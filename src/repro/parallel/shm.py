"""Zero-copy shared-memory publication of read-only shard context.

Every pooled ``ShardedExecutor.map()`` ships a *shared* context to its
workers — the columnar ``ec(t)`` class-identifier matrix and couple
index arrays, the row → class-index tables, the sorted agree-set masks.
With the legacy per-call pool that context travels through the pool
initializer as one pickle per worker; with the persistent pool (which
has no per-map initializer) it would otherwise travel as one pickle per
*task*.  :class:`SharedArrayArena` removes both costs for the heavy
payloads:

- **NumPy arrays** at or above :data:`ARRAY_THRESHOLD_BYTES` are copied
  once into a :class:`multiprocessing.shared_memory.SharedMemory`
  segment and replaced by a tiny ``(name, shape, dtype)`` handle;
  workers re-map the segment and reconstruct the array **zero-copy**
  (``np.ndarray(..., buffer=shm.buf)``, read-only).
- **Other large values** (class-index tables, identifier maps, packed
  mask lists — anything whose pickle is at or above
  :data:`BLOB_THRESHOLD_BYTES`) are pickled *once* into a shared
  segment; workers unpickle once per map generation instead of once per
  task.
- **Small values** ship inline — below the thresholds a pickle is
  cheaper than a segment round-trip.

Fallbacks are graceful and silent: without NumPy the array path simply
never triggers (blobs still work — they need only pickle), and without
a usable ``shared_memory`` implementation everything ships inline,
which keeps results bit-for-bit identical in every configuration.  Both
probes (:data:`_np`, :data:`_shm`) are module attributes precisely so
tests can monkeypatch them away, mirroring ``repro.columnar._np``.

Cleanup discipline: the creating process owns the segments.  The arena
unlinks them in :meth:`SharedArrayArena.close` (callers wrap maps in
``try/finally``), with a :func:`weakref.finalize` safety net for
abandoned arenas — Linux frees the backing pages once the last mapping
closes, so unlinking while workers still hold attachments is safe.
Pool workers (fork *and* spawn) inherit the parent's resource-tracker
process, so a worker attaching a segment re-registers a name the
tracker already holds (a set, deduplicated) and the parent's
``unlink()`` is the one unregistration point — the bpo-38119
double-unlink hazard of *independent* attaching processes does not
arise here, and workers must **not** unregister attachments (that
would strip the parent's leak protection).

Segment names carry the :data:`SEGMENT_PREFIX` so a leak is
observable: after ``close()`` no ``/dev/shm/repro_shm_*`` entry from
this arena survives (asserted by ``tests/test_pool_lifecycle.py``).
"""

from __future__ import annotations

import pickle
import uuid
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import MetricsRegistry, get_logger

try:  # pragma: no cover - exercised by monkeypatching in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:  # pragma: no cover - platforms without POSIX/Windows shm
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

__all__ = [
    "ARRAY_THRESHOLD_BYTES",
    "BLOB_THRESHOLD_BYTES",
    "SEGMENT_PREFIX",
    "SharedArrayArena",
    "DecodedShared",
    "EncodedShared",
    "decode_shared",
    "numpy_available",
    "pack_masks",
    "shm_available",
    "unpack_masks",
]

logger = get_logger(__name__)

#: NumPy arrays smaller than this ship inline: a pickle of a few KiB is
#: cheaper than creating, mapping and unlinking a segment.
ARRAY_THRESHOLD_BYTES = 32 * 1024

#: Non-array values whose pickle is at least this large go into a
#: pickled-blob segment (one pickle total instead of one per task).
BLOB_THRESHOLD_BYTES = 64 * 1024

#: Every arena segment name starts with this, so leaked segments are
#: identifiable in /dev/shm and tests can assert there are none.
SEGMENT_PREFIX = "repro_shm_"


def numpy_available() -> bool:
    """Is the zero-copy ndarray path available?"""
    return _np is not None


def shm_available() -> bool:
    """Is :mod:`multiprocessing.shared_memory` importable here?"""
    return _shm is not None


def _segment_name() -> str:
    return SEGMENT_PREFIX + uuid.uuid4().hex[:16]


def _release_segments(segments: List[Any]) -> None:
    """Close + unlink every owned segment (finalizer-safe, idempotent)."""
    while segments:
        segment = segments.pop()
        try:
            segment.close()
            segment.unlink()
        except Exception:  # noqa: BLE001 - already gone is fine
            pass


# -- packed bitset helpers ---------------------------------------------------

def pack_masks(masks: Sequence[int], width: int):
    """Pack attribute-set bitmasks into a ``(n, lanes)`` uint64 array.

    ``lanes = ceil(width / 64)``, little-endian lane order, so masks
    wider than 64 attributes (the lane-boundary fixtures) round-trip
    exactly.  Requires NumPy (callers gate on :func:`numpy_available`).
    """
    lanes = max(1, -(-width // 64))
    buffer = b"".join(int(mask).to_bytes(lanes * 8, "little")
                      for mask in masks)
    packed = _np.frombuffer(buffer, dtype="<u8")
    return packed.reshape(len(masks), lanes).copy()


def unpack_masks(packed) -> List[int]:
    """Invert :func:`pack_masks`: rows back to arbitrary-width ints."""
    rows = _np.ascontiguousarray(packed, dtype="<u8")
    return [int.from_bytes(row.tobytes(), "little") for row in rows]


# -- encoded / decoded context containers ------------------------------------

class EncodedShared:
    """The picklable wire form of one map's shared context.

    ``entries`` is ``[(key, tag, data), ...]`` where *tag* is
    ``"inline"`` (data is the value itself), ``"array"`` (data is
    ``(segment, shape, dtype)``) or ``"blob"`` (data is
    ``(segment, length)``).  ``is_dict`` distinguishes a dict context
    (the normal case) from an opaque single value.
    """

    __slots__ = ("is_dict", "entries")

    def __init__(self, is_dict: bool,
                 entries: List[Tuple[Any, str, Any]]):
        self.is_dict = is_dict
        self.entries = entries

    def __getstate__(self):
        return (self.is_dict, self.entries)

    def __setstate__(self, state):
        self.is_dict, self.entries = state


class DecodedShared:
    """A worker-side reconstruction of an :class:`EncodedShared`.

    ``shared`` is the usable context (same shape the serial path sees).
    ``close()`` drops the segment attachments; the arrays reconstructed
    over ``shm.buf`` die with them, so callers only close when evicting
    a whole cached generation.
    """

    __slots__ = ("shared", "_attachments")

    def __init__(self, shared: Any, attachments: List[Any]):
        self.shared = shared
        self._attachments = attachments

    def close(self) -> None:
        while self._attachments:
            segment = self._attachments.pop()
            try:
                segment.close()
            except Exception:  # noqa: BLE001
                pass


def decode_shared(encoded: Any) -> DecodedShared:
    """Reconstruct a shared context in a worker process.

    Arrays come back zero-copy (read-only views over the mapped
    segment); blobs are unpickled once.  Plain values (a context that
    never went through :meth:`SharedArrayArena.encode`, e.g. from the
    serial path) pass through untouched.
    """
    if not isinstance(encoded, EncodedShared):
        return DecodedShared(encoded, [])
    attachments: List[Any] = []
    values: Dict[Any, Any] = {}
    for key, tag, data in encoded.entries:
        if tag == "inline":
            values[key] = data
        elif tag == "array":
            name, shape, dtype = data
            segment = _shm.SharedMemory(name=name)
            attachments.append(segment)
            array = _np.ndarray(shape, dtype=dtype, buffer=segment.buf)
            array.flags.writeable = False
            values[key] = array
        elif tag == "blob":
            name, length = data
            segment = _shm.SharedMemory(name=name)
            try:
                values[key] = pickle.loads(bytes(segment.buf[:length]))
            finally:
                segment.close()
        else:  # pragma: no cover - future-proofing
            raise ValueError(f"unknown shared-context tag {tag!r}")
    if encoded.is_dict:
        return DecodedShared(values, attachments)
    return DecodedShared(values[None], attachments)


# -- the arena ---------------------------------------------------------------

class SharedArrayArena:
    """Publish one map's shared context into shared-memory segments.

    One arena per ``map()`` call; the owning executor closes it in a
    ``finally`` so segments never outlive the map — an abandoned arena
    is still reclaimed by its :func:`weakref.finalize` hook (which also
    runs at interpreter exit).

    Parameters
    ----------
    metrics:
        Counter sink; every published segment adds its size to
        ``parallel.shm_bytes``.
    enabled:
        ``None`` (auto) uses shared memory whenever available; ``False``
        forces the inline path (classic pickling) regardless.
    array_threshold / blob_threshold:
        Size floors below which values ship inline.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 enabled: Optional[bool] = None,
                 array_threshold: int = ARRAY_THRESHOLD_BYTES,
                 blob_threshold: int = BLOB_THRESHOLD_BYTES):
        self.metrics = metrics
        self.enabled = shm_available() if enabled is None else (
            bool(enabled) and shm_available()
        )
        self.array_threshold = array_threshold
        self.blob_threshold = blob_threshold
        self.segments = 0
        self.bytes_published = 0
        #: Approximate pickled bytes that will ship inline *per task*
        #: (large values that could not be published); executors use it
        #: to bail out to the ephemeral path when shm is unavailable.
        self.inline_bytes = 0
        self._owned: List[Any] = []
        self._finalizer = weakref.finalize(
            self, _release_segments, self._owned
        )

    # -- encoding -----------------------------------------------------------

    def encode(self, shared: Any) -> Any:
        """Encode a shared context for per-task shipping.

        Returns ``None`` unchanged; otherwise an :class:`EncodedShared`
        whose heavy values live in segments owned by this arena.
        """
        if shared is None:
            return None
        if isinstance(shared, dict):
            entries = [self._encode_value(key, value)
                       for key, value in shared.items()]
            return EncodedShared(True, entries)
        return EncodedShared(False, [self._encode_value(None, shared)])

    def _encode_value(self, key: Any, value: Any) -> Tuple[Any, str, Any]:
        if (_np is not None and isinstance(value, _np.ndarray)
                and value.dtype != object
                and value.nbytes >= self.array_threshold):
            if self.enabled:
                handle = self._publish_array(value)
                if handle is not None:
                    return (key, "array", handle)
            self.inline_bytes += value.nbytes
            return (key, "inline", value)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) >= self.blob_threshold:
            if self.enabled:
                handle = self._publish_blob(payload)
                if handle is not None:
                    return (key, "blob", handle)
            self.inline_bytes += len(payload)
        return (key, "inline", value)

    def _new_segment(self, size: int):
        for _ in range(3):
            try:
                return _shm.SharedMemory(
                    name=_segment_name(), create=True, size=size
                )
            except FileExistsError:  # pragma: no cover - uuid collision
                continue
            except OSError as error:
                logger.warning(
                    "shared-memory segment creation failed (%s); "
                    "falling back to inline context", error,
                )
                self.enabled = False
                return None
        return None  # pragma: no cover

    def _publish_array(self, array) -> Optional[Tuple[str, tuple, str]]:
        segment = self._new_segment(array.nbytes)
        if segment is None:
            return None
        view = _np.ndarray(array.shape, dtype=array.dtype,
                           buffer=segment.buf)
        view[...] = array
        self._track(segment, array.nbytes)
        return (segment.name, array.shape, array.dtype.str)

    def _publish_blob(self, payload: bytes) -> Optional[Tuple[str, int]]:
        segment = self._new_segment(len(payload))
        if segment is None:
            return None
        segment.buf[:len(payload)] = payload
        self._track(segment, len(payload))
        return (segment.name, len(payload))

    def _track(self, segment, nbytes: int) -> None:
        self._owned.append(segment)
        self.segments += 1
        self.bytes_published += nbytes
        if self.metrics is not None:
            self.metrics.inc("parallel.shm_bytes", nbytes)

    # -- cleanup ------------------------------------------------------------

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        _release_segments(self._owned)

    def __enter__(self) -> "SharedArrayArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "shm" if self.enabled else "inline"
        return (f"SharedArrayArena({state}, {self.segments} segment(s), "
                f"{self.bytes_published} byte(s))")
