"""The Dep-Miner integrations of the sharded executor.

**Agree-set sharding** (:func:`parallel_agree_sets`) — the parent
enumerates the deduplicated couple stream of the maximal equivalence
classes (exactly once per couple, *before* chunking: see
:func:`repro.core.agree_sets.iter_distinct_couples` for why the distinct
count matters to the ``∅ ∈ ag(r)`` test), splits it into
``max_couples``-sized chunks, and ships each chunk to a worker.  Workers
resolve their chunk against the shared read-only row → class-index
tables (Algorithm 2) or identifier maps (Algorithm 3) — the *same*
resolution functions the serial algorithms call — and the parent unions
the partial ``ag(r)`` fragments.  Set union is commutative, so the
result is independent of completion order.

**Columnar couple-range sharding** (:func:`parallel_columnar_couples`)
— the columnar backend's variant of the same orchestration: the couple
stream is a pair of NumPy index arrays, so chunks are plain
``(start, stop)`` ranges and each worker resolves an array slice
against the shared per-tuple class-identifier matrix.

**Per-RHS-attribute lhs fan-out** (:func:`parallel_cmax_lhs`) — each
attribute's ``max(dep(r), A)`` derivation, complementation and minimal
transversal search touch only ``ag(r)`` and the attribute index, so the
whole ``CMAX_SET`` + ``LEFT_HAND_SIDE`` tail of the pipeline shards by
RHS attribute.  Workers return ``(attribute, max, cmax, lhs)`` tuples
that the parent reassembles into the usual per-attribute dicts, in
schema order.

Both orchestrators are deterministic by construction: shard payloads are
built from sorted inputs, every shard runs the serial code path, and
reassembly is keyed (by shard index / attribute index), never by
completion order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.agree_sets import (
    build_class_index_tables,
    empty_agree_set_present,
    iter_distinct_couples,
    resolve_couples_with_identifiers,
    resolve_couples_with_tables,
)
from repro.core.attributes import Schema
from repro.core.maximal_sets import maximal_sets_for_attribute
from repro.errors import ReproError
from repro.obs import get_logger
from repro.parallel import shm
from repro.parallel.executor import ShardedExecutor, register_shard_kind
from repro.partitions.database import StrippedPartitionDatabase

__all__ = [
    "parallel_agree_sets",
    "parallel_columnar_couples",
    "parallel_cmax_lhs",
]

logger = get_logger(__name__)

#: Auto shard granularity: aim for this many chunks per worker, so the
#: pool stays busy without drowning in tiny pickled payloads.
CHUNKS_PER_WORKER = 4

#: Never split below this many couples per shard (pickling a couple
#: costs more than resolving it).
MIN_CHUNK_COUPLES = 256

#: Only pack agree masks into a shared uint64 matrix above this count;
#: smaller lists pickle faster than they pack.
PACK_MIN_MASKS = 256


# -- worker functions (run in the pool; shared context via initializer) -----

@register_shard_kind("agree.couples")
def _agree_couples_shard(shared, payload, metrics) -> Set[int]:
    """Resolve one couple chunk against the row → class-index tables."""
    metrics.inc("agree.couples_enumerated", len(payload))
    return resolve_couples_with_tables(payload, shared["class_of"])


@register_shard_kind("agree.identifiers")
def _agree_identifiers_shard(shared, payload, metrics) -> Set[int]:
    """Resolve one couple chunk by identifier-set intersection."""
    metrics.inc("agree.couples_enumerated", len(payload))
    return resolve_couples_with_identifiers(payload, shared["identifiers"])


@register_shard_kind("columnar.couples")
def _columnar_couples_shard(shared, payload, metrics) -> Set[int]:
    """Resolve one couple-range slice against the shared ``ec(t)`` matrix.

    The payload is a ``(start, stop)`` range into the parent's couple
    arrays — chunked couple ranges are literally array slices on the
    columnar backend.  The import is deferred so this module stays
    importable without NumPy (the pure-Python lanes never ship this
    kind).
    """
    from repro.columnar.agree import resolve_couples

    start, stop = payload
    metrics.inc("agree.couples_enumerated", stop - start)
    return resolve_couples(
        shared["ec"], shared["left"][start:stop],
        shared["right"][start:stop],
    )


@register_shard_kind("lhs.attribute")
def _lhs_attribute_shard(shared, payload, metrics):
    """``CMAX_SET`` + transversal search for one RHS attribute.

    The shard-local *metrics* registry goes straight into the levelwise
    search, so its candidate counters and ``transversal.level_size``
    histogram flow back to the parent exactly as in a serial run.
    """
    from repro.hypergraph.kernel import minimal_transversals_kernel
    from repro.hypergraph.transversals import (
        minimal_transversals,
        minimal_transversals_levelwise,
    )

    attribute = payload
    agree: Optional[List[int]] = shared.get("agree")
    if agree is None:
        # The parent shipped the agree masks as a packed uint64 matrix
        # through the shared-memory arena; unpack once per worker per
        # map generation and cache the list back into the (per-process)
        # decoded context so sibling shards reuse it.
        from repro.parallel.shm import unpack_masks

        agree = unpack_masks(shared["agree_packed"])
        shared["agree"] = agree
    universe: int = shared["universe"]
    width: int = shared["width"]
    method: str = shared["method"]
    max_masks = maximal_sets_for_attribute(agree, attribute)
    cmax = sorted(universe & ~mask for mask in max_masks)
    if method == "levelwise":
        lhs = minimal_transversals_levelwise(
            cmax, width, max_size=shared["max_size"], metrics=metrics
        )
    elif method in ("kernel", "vectorized"):
        # The kernel's reduction counters flow back to the parent via
        # the shard-local registry, exactly like the levelwise series.
        lhs = minimal_transversals_kernel(
            cmax, width, max_size=shared["max_size"], metrics=metrics,
            backend="vectorized" if method == "vectorized" else "python",
        )
    else:
        lhs = minimal_transversals(cmax, width, method=method)
    return attribute, max_masks, cmax, lhs


# -- orchestrators (run in the parent) --------------------------------------

def _chunk_size(num_couples: int, jobs: int,
                max_couples: Optional[int]) -> int:
    """Couples per shard: the explicit memory bound, or an auto split."""
    if max_couples is not None:
        return max_couples
    auto = -(-num_couples // max(jobs * CHUNKS_PER_WORKER, 1))
    return max(auto, min(MIN_CHUNK_COUPLES, num_couples) or 1)


def parallel_agree_sets(spdb: StrippedPartitionDatabase,
                        executor: ShardedExecutor,
                        algorithm: str = "couples",
                        max_couples: Optional[int] = None,
                        mc: Optional[List[Tuple[int, ...]]] = None,
                        stats: Optional[Dict[str, int]] = None) -> Set[int]:
    """``ag(r)`` by sharding the couple stream over *executor*.

    Bit-for-bit identical to the serial algorithms: the couples are
    deduplicated before chunking (so ``num_couples`` counts each couple
    once and the ``∅`` detection stays sound), every chunk is resolved
    by the shared serial resolution function, and the union of partial
    results is order-independent.  *algorithm* is ``"couples"``
    (Algorithm 2; workers get the row → class-index tables) or
    ``"identifiers"`` (Algorithm 3; workers get the identifier maps).
    """
    if algorithm == "couples":
        if max_couples is not None and max_couples < 1:
            raise ReproError("max_couples must be a positive integer or None")
        kind = "agree.couples"
        shared = {"class_of": build_class_index_tables(spdb)}
    elif algorithm == "identifiers":
        if max_couples is not None:
            raise ReproError(
                "max_couples only applies to the 'couples' algorithm"
            )
        kind = "agree.identifiers"
        shared = {"identifiers": spdb.equivalence_class_identifiers()}
    else:
        raise ReproError(
            f"the parallel agree-set path supports 'couples' and "
            f"'identifiers'; got {algorithm!r}"
        )

    couples = list(iter_distinct_couples(spdb, mc))
    visited = len(couples)
    size = _chunk_size(visited, executor.jobs, max_couples)
    chunks = [
        tuple(couples[offset:offset + size])
        for offset in range(0, visited, size)
    ]
    logger.debug(
        "sharded agree sets: %d couples into %d chunks of <=%d (%s, %s)",
        visited, len(chunks), size, algorithm, executor,
    )
    result: Set[int] = set()
    for partial in executor.map(kind, chunks, shared=shared,
                                stage="agree_sets.shards"):
        result |= partial
    if stats is not None:
        stats["num_couples"] = visited
        stats["num_chunks"] = len(chunks)
    if empty_agree_set_present(spdb, visited):
        result.add(0)
    return result


def parallel_columnar_couples(ec, left, right,
                              executor: ShardedExecutor,
                              stats: Optional[Dict[str, int]] = None) -> Set[int]:
    """``ag(r)`` masks by sharding columnar couple ranges over *executor*.

    The parent enumerates and deduplicates the couple arrays once
    (:func:`repro.columnar.agree.candidate_couples`), then ships plain
    ``(start, stop)`` ranges; workers slice the shared ``left``/``right``
    index arrays and resolve their slice against the shared
    class-identifier matrix with the same vectorized resolution the
    serial columnar path uses.  Set union of the partial mask sets is
    order-independent, so the result is bit-for-bit the serial one; the
    ``∅ ∈ ag(r)`` test stays with the caller (it only needs the distinct
    couple count, which chunking does not change).
    """
    visited = int(left.shape[0])
    size = _chunk_size(visited, executor.jobs, None)
    ranges = [
        (offset, min(offset + size, visited))
        for offset in range(0, visited, size)
    ]
    shared = {"ec": ec, "left": left, "right": right}
    logger.debug(
        "sharded columnar agree sets: %d couples into %d ranges of <=%d "
        "(%s)", visited, len(ranges), size, executor,
    )
    result: Set[int] = set()
    for partial in executor.map("columnar.couples", ranges, shared=shared,
                                stage="agree_sets.shards"):
        result |= partial
    if stats is not None:
        stats["num_chunks"] = len(ranges)
    return result


def parallel_cmax_lhs(agree, schema: Schema,
                      executor: ShardedExecutor,
                      method: str = "levelwise",
                      max_size: Optional[int] = None):
    """Fan ``CMAX_SET`` + the transversal search out per RHS attribute.

    Returns ``(max_sets, cmax_sets, lhs_sets)`` — the same three
    per-attribute dicts the serial pipeline builds in its cmax and lhs
    phases, reassembled in schema order regardless of which worker
    finished first.
    """
    if max_size is not None and method not in (
        "levelwise", "kernel", "vectorized"
    ):
        raise ReproError(
            "max_size is only supported by the levelwise, kernel and "
            "vectorized methods"
        )
    agree_sorted = sorted(agree)
    shared = {
        "width": len(schema),
        "universe": schema.universe_mask,
        "method": method,
        "max_size": max_size,
    }
    if (len(agree_sorted) >= PACK_MIN_MASKS
            and getattr(executor, "shm_active", False)
            and shm.numpy_available()):
        # Zero-copy variant: the agree bitsets travel as one packed
        # uint64 matrix through the arena instead of a pickled list of
        # arbitrary-precision ints.  Workers unpack lazily (once per
        # map generation) — unpack(pack(x)) is exact at any width, so
        # the search sees the very same masks.
        shared["agree_packed"] = shm.pack_masks(agree_sorted, len(schema))
    else:
        shared["agree"] = agree_sorted
    attributes = list(range(len(schema)))
    outcomes = executor.map(
        "lhs.attribute", attributes, shared=shared, stage="lhs.shards"
    )
    max_sets: Dict[int, List[int]] = {}
    cmax_sets: Dict[int, List[int]] = {}
    lhs_sets: Dict[int, List[int]] = {}
    for attribute, max_masks, cmax, lhs in outcomes:
        max_sets[attribute] = max_masks
        cmax_sets[attribute] = cmax
        lhs_sets[attribute] = lhs
    return max_sets, cmax_sets, lhs_sets
