"""The sharded process-pool executor behind ``--jobs N``.

Dep-Miner's two dominant costs are embarrassingly parallel: couples
shard by chunk (each chunk resolves against the same read-only
row → class-index tables) and the per-attribute transversal searches are
mutually independent.  :class:`ShardedExecutor` is the one execution
primitive both integrations share:

- **work descriptors** — a :class:`Shard` is ``(kind, index, payload)``,
  picklable by construction; the *kind* names a registered worker
  function (see :func:`register_shard_kind`) and the heavy read-only
  context travels once per worker through the pool initializer, not
  once per shard;
- **serial fallback** — ``jobs=1`` (the default everywhere) runs the
  very same shard functions inline, in order, with no pool, no pickling
  and no behavioural difference: the parallel layer is a pure execution
  strategy, never a second implementation of the algorithms;
- **bounded result queue** — at most ``max_pending`` shards are in
  flight; submission is windowed so a thousand-shard run never
  materialises a thousand result buffers;
- **per-shard timeout + cancellation** — each shard's result is awaited
  with a deadline (:class:`ShardTimeoutError` terminates the pool), and
  a progress callback returning ``False`` aborts the whole map through
  the usual :class:`~repro.obs.ProgressAborted` channel;
- **observability from workers** — a worker cannot write into the
  parent's tracer, so every shard reports its wall-clock seconds plus
  the counters and histogram summaries of a shard-local
  :class:`~repro.obs.MetricsRegistry` through the result queue; the
  parent re-records each shard as a synthetic span
  (:meth:`repro.obs.Tracer.record`), merges the counters
  (:meth:`~repro.obs.MetricsRegistry.inc`) and histograms
  (:meth:`~repro.obs.MetricsRegistry.merge_histogram`) into its own
  registry and emits one progress step per completed shard;
- **retry, poisoning, degradation** — a failed shard attempt is retried
  with exponential backoff and keyed jitter
  (:class:`~repro.reliability.RetryPolicy`, counter ``parallel.retry``)
  unless the failure is a typed library error; a shard that exhausts
  its retries, a pool whose failed attempts pile past
  ``poison_threshold`` (counter ``parallel.poisoned``), or a pool whose
  IPC machinery dies, all **degrade to serial execution**: the pool is
  terminated, the not-yet-completed shards run inline in the parent,
  and the executor stays serial for the rest of its life (counter
  ``parallel.degraded``, span ``reliability.degraded``).  Degradation
  re-runs only shards without results, so merged work counters are
  never double-counted.  Injected faults
  (:mod:`repro.reliability.faults`, site ``parallel.shard``) exercise
  exactly these paths.

Determinism guarantee: results are reassembled by shard index, so
``map()`` returns exactly what the serial loop would — the callers
(``parallel_agree_sets``, ``parallel_cmax_lhs``) are bit-for-bit
identical to ``jobs=1``.  See ``docs/parallel.md``.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    ProgressCallback,
    Tracer,
    emit_progress,
    get_logger,
)
from repro.reliability.faults import FaultPlan, activate_plan, current_plan, fault_point
from repro.reliability.retry import RetryPolicy

__all__ = [
    "Shard",
    "ShardOutcome",
    "ShardError",
    "ShardTimeoutError",
    "ShardedExecutor",
    "register_shard_kind",
    "resolve_jobs",
]

logger = get_logger(__name__)


class ShardError(ReproError):
    """A shard failed in a worker process (carries the worker traceback)."""


class ShardTimeoutError(ShardError):
    """A shard exceeded the per-shard timeout; the pool was terminated."""


@dataclass(frozen=True)
class Shard:
    """One unit of work: a registered *kind* plus a picklable *payload*."""

    kind: str
    index: int
    payload: Any


@dataclass
class ShardOutcome:
    """What a worker sends back through the result queue for one shard.

    ``retryable`` is decided where the exception type is still known
    (the worker): typed library errors (:class:`~repro.errors.ReproError`)
    are deterministic and never retried; everything else — injected
    faults, real IO errors, crashes — is assumed transient.
    """

    index: int
    value: Any = None
    seconds: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    error: Optional[str] = None
    retryable: bool = True


#: Registered shard functions: ``kind -> fn(shared, payload, metrics)``.
SHARD_KINDS: Dict[str, Callable[[Any, Any, MetricsRegistry], Any]] = {}


def register_shard_kind(name: str):
    """Register a worker function under *name* (module-level, picklable).

    The function receives ``(shared, payload, metrics)``: the read-only
    context shipped once per worker, the shard's own payload, and a
    shard-local :class:`~repro.obs.MetricsRegistry` — its counters and
    histogram summaries travel back through the result queue and the
    parent merges them, which is how worker-side work accounting flows
    into the run's metrics.  (Gauges do not merge meaningfully across
    shards and are not relayed.)
    """

    def decorator(function):
        SHARD_KINDS[name] = function
        return function

    return decorator


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ReproError(f"jobs must be a positive integer, 0 or None; "
                         f"got {jobs}")
    return jobs


# -- worker side (module-level so 'spawn' contexts can pickle them) ----------

_WORKER_SHARED: Any = None


def _worker_init(shared: Any, fault_plan: Optional[Dict[str, Any]] = None) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = shared
    if fault_plan is not None:
        # The parent's active plan travels as a plain dict; the copy
        # starts with fresh per-site call counters (one per process).
        activate_plan(FaultPlan.from_dict(fault_plan))


def _reliability_counters(local: MetricsRegistry) -> Dict[str, float]:
    """The injection-accounting slice of a shard-local registry.

    Failed attempts relay *only* these counters: their partial work
    counters must not merge (a retried shard would double-count), but
    the parent still needs to see the injections that killed them.
    """
    return {
        name: value for name, value in local.counters.items()
        if name.startswith("reliability.")
    }


def _attempt_shard(shared: Any, shard: Shard, pool: bool) -> ShardOutcome:
    """One attempt at one shard, with the fault site armed."""
    start = time.perf_counter()
    local = MetricsRegistry()
    try:
        # In-process attempts skip the local registry for injection
        # accounting: the plan's bound registry (same process) already
        # sees them, and the local counters merge back into the parent
        # registry — routing through both would double count.  Pool
        # workers have no useful bound registry, so there the local
        # counters carry the injections home via the outcome relay.
        fault_point(
            "parallel.shard", metrics=local if pool else NULL_METRICS,
            kind=shard.kind, index=shard.index, pool=pool,
        )
        function = _shard_function(shard.kind)
        value = function(shared, shard.payload, local)
        return ShardOutcome(
            index=shard.index, value=value,
            seconds=time.perf_counter() - start,
            counters=dict(local.counters),
            histograms={
                name: histogram.to_dict()
                for name, histogram in local.histograms.items()
            },
        )
    except Exception as exc:
        return ShardOutcome(
            index=shard.index, seconds=time.perf_counter() - start,
            error=traceback.format_exc(),
            counters=_reliability_counters(local),
            retryable=not isinstance(exc, ReproError),
        )


def _run_shard(shard: Shard) -> ShardOutcome:
    return _attempt_shard(_WORKER_SHARED, shard, pool=True)


def _shard_function(kind: str):
    try:
        return SHARD_KINDS[kind]
    except KeyError:
        # A 'spawn' worker imports this module alone; the built-in kinds
        # live in repro.parallel.shards — import them once and retry.
        import repro.parallel.shards  # noqa: F401  (registers kinds)

        try:
            return SHARD_KINDS[kind]
        except KeyError:
            raise ReproError(f"unknown shard kind {kind!r}") from None


# -- the executor ------------------------------------------------------------

class ShardedExecutor:
    """Run registered shard kinds over a process pool (or inline).

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs everything inline — the
        guaranteed-identical serial path; ``None``/``0`` means all
        cores.
    shard_timeout:
        Seconds to wait for each shard's result before terminating the
        pool with :class:`ShardTimeoutError`.  ``None`` waits forever.
        (Shards run concurrently, so this bounds the *straggler* wait,
        not the sum.)
    mp_context:
        ``multiprocessing`` start method; default prefers ``"fork"``
        (cheap copy-on-write sharing of the read-only context) and
        falls back to ``"spawn"`` where fork is unavailable.
    max_pending:
        Bound on in-flight shards (the result-queue budget); default
        ``2 × jobs``.
    retries / retry_backoff:
        Re-attempts per shard after a retryable failure (typed
        :class:`~repro.errors.ReproError` failures are never retried)
        and the backoff base in seconds — exponential with keyed jitter
        per :class:`~repro.reliability.RetryPolicy`.  ``retries=0``
        disables retry.
    poison_threshold:
        Total failed attempts across one ``map`` after which the pool
        is declared poisoned (a sick worker keeps eating shards) and
        execution degrades to serial immediately.
    degrade:
        Whether a pool that keeps failing falls back to running the
        remaining shards inline (``True``, the default) or raises
        :class:`ShardError` like the pre-reliability executor.  Once an
        executor degrades it stays serial for its remaining ``map``
        calls.
    tracer / metrics / progress:
        The usual observability hooks (:mod:`repro.obs`).  Each
        completed shard is re-recorded as a synthetic ``parallel.shard``
        span, its counters and histograms are merged, and one progress
        step is emitted per completion (so an aborting callback cancels
        the map).
    """

    def __init__(self, jobs: int = 1,
                 shard_timeout: Optional[float] = None,
                 mp_context: Optional[str] = None,
                 max_pending: Optional[int] = None,
                 retries: int = 2,
                 retry_backoff: float = 0.05,
                 poison_threshold: int = 8,
                 degrade: bool = True,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 progress: Optional[ProgressCallback] = None):
        self.jobs = resolve_jobs(jobs)
        if shard_timeout is not None and shard_timeout <= 0:
            raise ReproError("shard_timeout must be positive or None")
        self.shard_timeout = shard_timeout
        self.mp_context = mp_context
        if max_pending is not None and max_pending < 1:
            raise ReproError("max_pending must be a positive integer or None")
        self.max_pending = max_pending
        self.retry_policy = RetryPolicy(retries=retries, base=retry_backoff)
        if poison_threshold < 1:
            raise ReproError("poison_threshold must be a positive integer")
        self.poison_threshold = poison_threshold
        self.degrade = degrade
        self.tracer = tracer
        self.metrics = metrics
        self.progress = progress
        self._degraded = False

    @property
    def serial(self) -> bool:
        return self.jobs <= 1

    @property
    def degraded(self) -> bool:
        """Has this executor fallen back to serial execution for good?"""
        return self._degraded

    def map(self, kind: str, payloads: Sequence[Any],
            shared: Any = None,
            stage: str = "parallel.shards") -> List[Any]:
        """Run *kind* over every payload; results in payload order.

        The serial path (``jobs=1``, or fewer than two shards) calls
        the shard function inline; otherwise the shards are distributed
        over the pool with a bounded in-flight window.  Either way the
        observability side effects are the same: one synthetic span,
        one counter merge and one *stage* progress step per shard.
        """
        shards = [
            Shard(kind=kind, index=index, payload=payload)
            for index, payload in enumerate(payloads)
        ]
        if not shards:
            return []
        if self.serial or self._degraded or len(shards) == 1:
            return self._map_serial(shards, shared, stage)
        return self._map_pool(shards, shared, stage)

    # -- serial fallback ----------------------------------------------------

    def _serial_attempts(self, shard: Shard, shared: Any) -> ShardOutcome:
        """Run one shard inline with the retry policy.

        Mirrors the pool path's retry semantics — retryable failures
        back off and re-attempt, typed library errors re-raise at once —
        but the *final* failure re-raises the original exception
        unwrapped, preserving the serial path's historical contract.
        """
        function = _shard_function(shard.kind)
        for attempt in range(1, self.retry_policy.attempts + 1):
            local = MetricsRegistry()
            start = time.perf_counter()
            try:
                # In-process injection accounting goes through the
                # plan's bound registry alone; counting into `local`
                # too would double count once it merges back.
                fault_point(
                    "parallel.shard", metrics=NULL_METRICS,
                    kind=shard.kind, index=shard.index, pool=False,
                )
                value = function(shared, shard.payload, local)
            except Exception as exc:
                self._merge_counters(_reliability_counters(local))
                if (isinstance(exc, ReproError)
                        or attempt >= self.retry_policy.attempts):
                    raise
                self._note_retry(shard, attempt,
                                 f"{type(exc).__name__}: {exc}")
                continue
            return ShardOutcome(
                index=shard.index, value=value,
                seconds=time.perf_counter() - start,
                counters=dict(local.counters),
                histograms={
                    name: histogram.to_dict()
                    for name, histogram in local.histograms.items()
                },
            )
        raise AssertionError("unreachable: attempts loop always returns")

    def _map_serial(self, shards: List[Shard], shared: Any,
                    stage: str) -> List[Any]:
        results: List[Any] = []
        for done, shard in enumerate(shards, start=1):
            outcome = self._serial_attempts(shard, shared)
            self._absorb(outcome, shard, done, len(shards), stage)
            results.append(outcome.value)
        return results

    # -- pool path ----------------------------------------------------------

    def _pool_context(self):
        import multiprocessing

        method = self.mp_context
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        return multiprocessing.get_context(method)

    def _map_pool(self, shards: List[Shard], shared: Any,
                  stage: str) -> List[Any]:
        import multiprocessing

        context = self._pool_context()
        processes = min(self.jobs, len(shards))
        window = self.max_pending or 2 * self.jobs
        total = len(shards)
        results: List[Any] = [None] * total
        completed = [False] * total
        attempts: Dict[int, int] = {}
        failures = 0  # failed attempts across the whole map (poison detector)
        done = 0
        degrade_reason: Optional[str] = None
        plan = current_plan()
        pool = context.Pool(
            processes=processes, initializer=_worker_init,
            initargs=(shared, plan.to_dict() if plan is not None else None),
        )

        def submit(shard: Shard) -> None:
            attempts[shard.index] = attempts.get(shard.index, 0) + 1
            pending.append((shard, pool.apply_async(_run_shard, (shard,))))

        try:
            pending: deque = deque()
            queue = iter(shards[window:])
            for shard in shards[:window]:
                submit(shard)
            while pending:
                shard, handle = pending.popleft()
                try:
                    outcome = handle.get(self.shard_timeout)
                except multiprocessing.TimeoutError:
                    raise ShardTimeoutError(
                        f"shard {shard.index} ({shard.kind}) exceeded the "
                        f"{self.shard_timeout:g}s per-shard timeout"
                    ) from None
                except (OSError, EOFError) as error:
                    # The pool's IPC machinery died (worker crash, broken
                    # pipe): the pool is unusable, degrade or raise.
                    if not self.degrade:
                        raise ShardError(
                            f"worker pool failed while running shard "
                            f"{shard.index} ({shard.kind}): {error}"
                        ) from error
                    degrade_reason = f"worker pool failure: {error}"
                    break
                if outcome.error is not None:
                    failures += 1
                    self._absorb(outcome, shard, done, total, stage,
                                 progress_step=False)
                    if failures >= self.poison_threshold:
                        self._count("parallel.poisoned")
                        logger.warning(
                            "worker pool poisoned: %d failed attempts in "
                            "one map (threshold %d)", failures,
                            self.poison_threshold,
                        )
                        if not self.degrade:
                            raise ShardError(
                                f"worker pool poisoned after {failures} "
                                f"failed attempts; last failure in shard "
                                f"{shard.index} ({shard.kind}):\n"
                                f"{outcome.error}"
                            )
                        degrade_reason = (
                            f"pool poisoned ({failures} failed attempts)"
                        )
                        break
                    if (outcome.retryable
                            and attempts[shard.index]
                            <= self.retry_policy.retries):
                        self._note_retry(shard, attempts[shard.index],
                                         outcome.error.strip()
                                         .splitlines()[-1])
                        submit(shard)
                        continue
                    if outcome.retryable and self.degrade:
                        degrade_reason = (
                            f"shard {shard.index} ({shard.kind}) failed "
                            f"{attempts[shard.index]} attempt(s)"
                        )
                        break
                    raise ShardError(
                        f"shard {shard.index} ({shard.kind}) failed in a "
                        f"worker:\n{outcome.error}"
                    )
                done += 1
                completed[outcome.index] = True
                self._absorb(outcome, shard, done, total, stage)
                results[outcome.index] = outcome.value
                for next_shard in queue:
                    submit(next_shard)
                    break
            if degrade_reason is None:
                pool.close()
                pool.join()
        except BaseException:
            # Timeout, worker failure or cancellation (ProgressAborted):
            # kill the remaining workers, don't leak the pool.
            pool.terminate()
            pool.join()
            raise
        if degrade_reason is not None:
            pool.terminate()
            pool.join()
            return self._degrade_to_serial(
                shards, shared, stage, results, completed, done,
                degrade_reason,
            )
        return results

    def _degrade_to_serial(self, shards: List[Shard], shared: Any,
                           stage: str, results: List[Any],
                           completed: List[bool], done: int,
                           reason: str) -> List[Any]:
        """Finish a broken pool map inline; stay serial from here on.

        Only shards without a result re-run, so work counters merged
        from completed shards are never double-counted.  A shard that
        *still* fails inline raises :class:`ShardError` (typed), and the
        original exception text rides along in the message.
        """
        self._degraded = True
        self._count("parallel.degraded")
        logger.warning(
            "degrading to serial execution (%s); %d/%d shard(s) to re-run "
            "inline", reason, len(shards) - sum(completed), len(shards),
        )
        if self.tracer is not None:
            self.tracer.record("reliability.degraded", 0.0, reason=reason)
        total = len(shards)
        for shard in shards:
            if completed[shard.index]:
                continue
            try:
                outcome = self._serial_attempts(shard, shared)
            except ReproError:
                raise
            except Exception as exc:
                raise ShardError(
                    f"shard {shard.index} ({shard.kind}) failed after "
                    f"degrading to serial execution:\n"
                    f"{traceback.format_exc()}"
                ) from exc
            done += 1
            completed[shard.index] = True
            self._absorb(outcome, shard, done, total, stage)
            results[shard.index] = outcome.value
        return results

    # -- observability relay ------------------------------------------------

    def _absorb(self, outcome: ShardOutcome, shard: Shard, done: int,
                total: int, stage: str, progress_step: bool = True) -> None:
        """Relay one shard outcome into the tracer/metrics/progress hooks.

        Failed attempts pass ``progress_step=False``: their span (status
        ``error``) and reliability counters are recorded, but the
        done-count only advances on completion.
        """
        if self.tracer is not None:
            self.tracer.record(
                "parallel.shard", outcome.seconds, kind=shard.kind,
                shard=shard.index, status="error" if outcome.error else "ok",
            )
        if self.metrics is not None:
            for name, value in outcome.counters.items():
                self.metrics.inc(name, value)
            for name, summary in outcome.histograms.items():
                self.metrics.merge_histogram(name, summary)
        if self.progress is not None and progress_step:
            emit_progress(self.progress, stage, done, total)

    def _count(self, name: str, value: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)

    def _merge_counters(self, counters: Dict[str, float]) -> None:
        if self.metrics is not None:
            for name, value in counters.items():
                self.metrics.inc(name, value)

    def _note_retry(self, shard: Shard, attempt: int, cause: str) -> None:
        """Count, trace and back off before re-attempt *attempt*."""
        backoff = self.retry_policy.backoff(attempt, token=shard.index)
        self._count("parallel.retry")
        if self.tracer is not None:
            self.tracer.record(
                "reliability.retry", backoff, kind=shard.kind,
                shard=shard.index, attempt=attempt, cause=cause,
            )
        logger.info(
            "retrying shard %d (%s) after attempt %d (%s); backing off "
            "%.3fs", shard.index, shard.kind, attempt, cause, backoff,
        )
        time.sleep(backoff)

    def __repr__(self) -> str:
        if self.serial:
            mode = "serial"
        elif self._degraded:
            mode = f"{self.jobs} workers, degraded to serial"
        else:
            mode = f"{self.jobs} workers"
        timeout = (
            f", timeout={self.shard_timeout:g}s" if self.shard_timeout else ""
        )
        return f"ShardedExecutor({mode}{timeout})"
