"""The sharded process-pool executor behind ``--jobs N``.

Dep-Miner's two dominant costs are embarrassingly parallel: couples
shard by chunk (each chunk resolves against the same read-only
row → class-index tables) and the per-attribute transversal searches are
mutually independent.  :class:`ShardedExecutor` is the one execution
primitive both integrations share:

- **work descriptors** — a :class:`Shard` is ``(kind, index, payload)``,
  picklable by construction; the *kind* names a registered worker
  function (see :func:`register_shard_kind`) and the heavy read-only
  context travels once per worker through the pool initializer, not
  once per shard;
- **serial fallback** — ``jobs=1`` (the default everywhere) runs the
  very same shard functions inline, in order, with no pool, no pickling
  and no behavioural difference: the parallel layer is a pure execution
  strategy, never a second implementation of the algorithms;
- **bounded result queue** — at most ``max_pending`` shards are in
  flight; submission is windowed so a thousand-shard run never
  materialises a thousand result buffers;
- **per-shard timeout + cancellation** — each shard's result is awaited
  with a deadline (:class:`ShardTimeoutError` terminates the pool), and
  a progress callback returning ``False`` aborts the whole map through
  the usual :class:`~repro.obs.ProgressAborted` channel;
- **observability from workers** — a worker cannot write into the
  parent's tracer, so every shard reports its wall-clock seconds plus
  the counters and histogram summaries of a shard-local
  :class:`~repro.obs.MetricsRegistry` through the result queue; the
  parent re-records each shard as a synthetic span
  (:meth:`repro.obs.Tracer.record`), merges the counters
  (:meth:`~repro.obs.MetricsRegistry.inc`) and histograms
  (:meth:`~repro.obs.MetricsRegistry.merge_histogram`) into its own
  registry and emits one progress step per completed shard;
- **persistent worker pool** — pooled maps run on a lazily-created
  :class:`PersistentPool` that is *reused* across ``map()`` calls (and,
  when the pool is injected by ``DepMiner`` or the service, across
  whole runs and requests), so daemon-style traffic stops paying pool
  spin-up per call (counter ``parallel.pool_reuse``, span
  ``parallel.pool_build`` on builds/rebuilds).  The legacy
  one-pool-per-map behaviour remains available as
  ``pool_mode="ephemeral"``.
- **zero-copy shared context** — the persistent path publishes each
  map's heavy read-only context through a
  :class:`~repro.parallel.shm.SharedArrayArena` (counter
  ``parallel.shm_bytes``, span ``parallel.arena``): NumPy arrays map
  into workers zero-copy, large Python structures pickle once into a
  shared blob, and per-task messages stay tiny.  Workers cache the
  decoded context per map *generation*, and everything degrades to
  plain pickling when shared memory or NumPy is unavailable.
- **retry, poisoning, degradation** — a failed shard attempt is retried
  with exponential backoff and keyed jitter
  (:class:`~repro.reliability.RetryPolicy`, counter ``parallel.retry``)
  unless the failure is a typed library error; a shard that exhausts
  its retries, a pool whose failed attempts pile past
  ``poison_threshold`` (counter ``parallel.poisoned``), or a pool whose
  IPC machinery dies, all **degrade to serial execution**: the pool is
  terminated, the not-yet-completed shards run inline in the parent,
  and the executor stays serial for the rest of its life (counter
  ``parallel.degraded``, span ``reliability.degraded``).  Degradation
  re-runs only shards without results, so merged work counters are
  never double-counted.  Injected faults
  (:mod:`repro.reliability.faults`, site ``parallel.shard``) exercise
  exactly these paths.

Determinism guarantee: results are reassembled by shard index, so
``map()`` returns exactly what the serial loop would — the callers
(``parallel_agree_sets``, ``parallel_cmax_lhs``) are bit-for-bit
identical to ``jobs=1``.  See ``docs/parallel.md``.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
import uuid
import weakref
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    ProgressCallback,
    Tracer,
    emit_progress,
    get_logger,
)
from repro.parallel.shm import SharedArrayArena, decode_shared, shm_available
from repro.reliability.faults import (
    FaultPlan,
    activate_plan,
    current_plan,
    deactivate_plan,
    fault_point,
)
from repro.reliability.retry import RetryPolicy

__all__ = [
    "MpContextError",
    "PersistentPool",
    "Shard",
    "ShardOutcome",
    "ShardError",
    "ShardTimeoutError",
    "ShardedExecutor",
    "register_shard_kind",
    "resolve_jobs",
    "resolve_start_method",
]

logger = get_logger(__name__)


class ShardError(ReproError):
    """A shard failed in a worker process (carries the worker traceback)."""


class ShardTimeoutError(ShardError):
    """A shard exceeded the per-shard timeout; the pool was terminated."""


class MpContextError(ReproError):
    """The requested multiprocessing start method is unavailable here."""


def resolve_start_method(method: Optional[str]) -> Optional[str]:
    """Validate an ``mp_context`` name against this platform.

    ``None`` (auto: prefer ``fork``, fall back to ``spawn``) passes
    through; anything else must be one of
    :func:`multiprocessing.get_all_start_methods` or a typed
    :class:`MpContextError` is raised.
    """
    if method is None:
        return None
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    if method not in available:
        raise MpContextError(
            f"multiprocessing start method {method!r} is not available "
            f"on this platform (available: {', '.join(available)})"
        )
    return method


@dataclass(frozen=True)
class Shard:
    """One unit of work: a registered *kind* plus a picklable *payload*."""

    kind: str
    index: int
    payload: Any


@dataclass
class ShardOutcome:
    """What a worker sends back through the result queue for one shard.

    ``retryable`` is decided where the exception type is still known
    (the worker): typed library errors (:class:`~repro.errors.ReproError`)
    are deterministic and never retried; everything else — injected
    faults, real IO errors, crashes — is assumed transient.
    """

    index: int
    value: Any = None
    seconds: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    error: Optional[str] = None
    retryable: bool = True


#: Registered shard functions: ``kind -> fn(shared, payload, metrics)``.
SHARD_KINDS: Dict[str, Callable[[Any, Any, MetricsRegistry], Any]] = {}

#: When the arena cannot publish anything and the inline context is
#: bigger than this, a persistent map falls back to the ephemeral path
#: (one initializer pickle per worker beats one per task).
_INLINE_CONTEXT_LIMIT = 256 * 1024


def register_shard_kind(name: str):
    """Register a worker function under *name* (module-level, picklable).

    The function receives ``(shared, payload, metrics)``: the read-only
    context shipped once per worker, the shard's own payload, and a
    shard-local :class:`~repro.obs.MetricsRegistry` — its counters and
    histogram summaries travel back through the result queue and the
    parent merges them, which is how worker-side work accounting flows
    into the run's metrics.  (Gauges do not merge meaningfully across
    shards and are not relayed.)
    """

    def decorator(function):
        SHARD_KINDS[name] = function
        return function

    return decorator


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ReproError(f"jobs must be a positive integer, 0 or None; "
                         f"got {jobs}")
    return jobs


# -- worker side (module-level so 'spawn' contexts can pickle them) ----------

_WORKER_SHARED: Any = None


def _worker_init(shared: Any, fault_plan: Optional[Dict[str, Any]] = None) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = shared
    if fault_plan is not None:
        # The parent's active plan travels as a plain dict; the copy
        # starts with fresh per-site call counters (one per process).
        activate_plan(FaultPlan.from_dict(fault_plan))


#: Persistent-pool workers have no per-map initializer, so each task
#: carries a tiny context descriptor instead: a *generation* id (one
#: per ``map()``), the arena-encoded shared context, and the fault
#: plan.  Workers decode each generation once and cache the result —
#: the cache holds a few generations so concurrent service maps do not
#: thrash each other's attachments.
_WORKER_CONTEXTS: "OrderedDict[str, Any]" = OrderedDict()
_WORKER_CONTEXT_LIMIT = 4
_WORKER_PLAN_GENERATION: Optional[str] = None


def _worker_shared_for(ctx: Dict[str, Any]) -> Any:
    """Resolve a task's shared context in a (single-threaded) worker.

    First sight of a generation decodes the arena handles (attaching
    shared-memory segments zero-copy) and switches the process's fault
    plan to the generation's — fresh per-site counters per map, the
    same semantics the ephemeral pool's initializer had.  Later tasks
    of the same generation hit the cache.
    """
    global _WORKER_PLAN_GENERATION
    generation = ctx["generation"]
    entry = _WORKER_CONTEXTS.get(generation)
    if entry is None:
        entry = decode_shared(ctx["shared"])
        _WORKER_CONTEXTS[generation] = entry
        while len(_WORKER_CONTEXTS) > _WORKER_CONTEXT_LIMIT:
            _, evicted = _WORKER_CONTEXTS.popitem(last=False)
            evicted.close()
    else:
        _WORKER_CONTEXTS.move_to_end(generation)
    if _WORKER_PLAN_GENERATION != generation:
        plan = ctx.get("fault_plan")
        if plan is not None:
            activate_plan(FaultPlan.from_dict(plan))
        else:
            deactivate_plan()
        _WORKER_PLAN_GENERATION = generation
    return entry.shared


def _reliability_counters(local: MetricsRegistry) -> Dict[str, float]:
    """The injection-accounting slice of a shard-local registry.

    Failed attempts relay *only* these counters: their partial work
    counters must not merge (a retried shard would double-count), but
    the parent still needs to see the injections that killed them.
    """
    return {
        name: value for name, value in local.counters.items()
        if name.startswith("reliability.")
    }


def _attempt_shard(shared: Any, shard: Shard, pool: bool) -> ShardOutcome:
    """One attempt at one shard, with the fault site armed."""
    start = time.perf_counter()
    local = MetricsRegistry()
    try:
        # In-process attempts skip the local registry for injection
        # accounting: the plan's bound registry (same process) already
        # sees them, and the local counters merge back into the parent
        # registry — routing through both would double count.  Pool
        # workers have no useful bound registry, so there the local
        # counters carry the injections home via the outcome relay.
        fault_point(
            "parallel.shard", metrics=local if pool else NULL_METRICS,
            kind=shard.kind, index=shard.index, pool=pool,
        )
        function = _shard_function(shard.kind)
        value = function(shared, shard.payload, local)
        return ShardOutcome(
            index=shard.index, value=value,
            seconds=time.perf_counter() - start,
            counters=dict(local.counters),
            histograms={
                name: histogram.to_dict()
                for name, histogram in local.histograms.items()
            },
        )
    except Exception as exc:
        return ShardOutcome(
            index=shard.index, seconds=time.perf_counter() - start,
            error=traceback.format_exc(),
            counters=_reliability_counters(local),
            retryable=not isinstance(exc, ReproError),
        )


def _run_shard(shard: Shard) -> ShardOutcome:
    return _attempt_shard(_WORKER_SHARED, shard, pool=True)


def _run_shard_ctx(ctx: Dict[str, Any], shard: Shard) -> ShardOutcome:
    """Persistent-pool task entry: resolve the context, run the shard.

    Context resolution failures (a segment that vanished, a corrupt
    blob) report through the usual :class:`ShardOutcome` error channel
    as retryable failures, so the parent's retry/degrade machinery —
    not a raw exception through ``AsyncResult.get`` — handles them.
    """
    try:
        shared = _worker_shared_for(ctx)
    except Exception:
        return ShardOutcome(
            index=shard.index, error=traceback.format_exc(),
            retryable=True,
        )
    return _attempt_shard(shared, shard, pool=True)


def _shard_function(kind: str):
    try:
        return SHARD_KINDS[kind]
    except KeyError:
        # A 'spawn' worker imports this module alone; the built-in kinds
        # live in repro.parallel.shards — import them once and retry.
        import repro.parallel.shards  # noqa: F401  (registers kinds)

        try:
            return SHARD_KINDS[kind]
        except KeyError:
            raise ReproError(f"unknown shard kind {kind!r}") from None


# -- the persistent pool -----------------------------------------------------

def _shutdown_pool(pool) -> None:
    """Finalizer target: tear a pool down without referencing its owner."""
    try:
        pool.terminate()
        pool.join()
    except Exception:  # noqa: BLE001 - interpreter may be shutting down
        pass


class PersistentPool:
    """A lazily-built, health-checked, reusable ``multiprocessing.Pool``.

    The pool is created on first :meth:`ensure` and then *reused* by
    every subsequent pooled map — across ``ShardedExecutor.map()``
    calls, across ``DepMiner.run()`` invocations (the miner owns one
    pool per instance), and across service requests (``repro serve``
    owns one pool per daemon).  A pool that poisons, times out or loses
    its IPC machinery is terminated and flagged broken
    (:meth:`mark_broken`); the *next* ``ensure()`` transparently
    rebuilds it, so one sick request never strands the daemon in
    degraded mode.

    Thread-safe: ``ensure``/``mark_broken``/``close`` serialize on a
    lock, and ``multiprocessing.Pool.apply_async`` is itself safe to
    call from concurrent service threads.  Cleanup is triple-covered:
    explicit :meth:`close`, a :func:`weakref.finalize` per built pool
    (which also fires at interpreter exit), and terminate-on-rebuild.
    """

    def __init__(self, jobs: Optional[int] = None,
                 mp_context: Optional[str] = None):
        self.jobs = resolve_jobs(jobs if jobs is not None else 1)
        self.mp_context = resolve_start_method(mp_context)
        self._lock = threading.Lock()
        self._pool = None
        self._finalizer = None
        self._broken = False
        self._closed = False
        self.builds = 0
        self.reuses = 0
        self.maps = 0

    def _context(self):
        import multiprocessing

        method = self.mp_context
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        return multiprocessing.get_context(method)

    def ensure(self):
        """Return ``(pool, reused)`` — building or rebuilding if needed."""
        with self._lock:
            if self._closed:
                raise ReproError("persistent pool is closed")
            if self._pool is not None and not self._broken:
                self.reuses += 1
                return self._pool, True
            self._terminate_locked()
            try:
                # Start the resource tracker *before* forking workers so
                # they inherit it: a worker whose first tracker contact
                # is a shared-memory attach would otherwise spawn its
                # own tracker, which then "cleans up" (and warns about)
                # segments the parent owns and already unlinked.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # noqa: BLE001 - tracker is best-effort
                pass
            self._pool = self._context().Pool(processes=self.jobs)
            self._finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
            self.builds += 1
            self._broken = False
            return self._pool, False

    def mark_broken(self) -> None:
        """Terminate now; the next :meth:`ensure` rebuilds."""
        with self._lock:
            self._broken = True
            self._terminate_locked()

    def _terminate_locked(self) -> None:
        pool, self._pool = self._pool, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if pool is not None:
            _shutdown_pool(pool)

    def close(self) -> None:
        """Tear the pool down for good (idempotent)."""
        with self._lock:
            self._closed = True
            self._broken = False
            self._terminate_locked()

    @property
    def live(self) -> bool:
        """Is a healthy pool currently running?"""
        return self._pool is not None and not self._broken

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, Any]:
        """The pool-lifecycle numbers surfaced on ``/stats``."""
        return {
            "workers": self.jobs,
            "mp_context": self.mp_context or "auto",
            "live": self.live,
            "builds": self.builds,
            "reuses": self.reuses,
            "maps": self.maps,
        }

    def __repr__(self) -> str:
        state = "live" if self.live else (
            "closed" if self._closed else "idle"
        )
        return (f"PersistentPool({self.jobs} workers, {state}, "
                f"{self.builds} build(s), {self.reuses} reuse(s))")


# -- the executor ------------------------------------------------------------

class ShardedExecutor:
    """Run registered shard kinds over a process pool (or inline).

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs everything inline — the
        guaranteed-identical serial path; ``None``/``0`` means all
        cores.
    shard_timeout:
        Seconds to wait for each shard's result before terminating the
        pool with :class:`ShardTimeoutError`.  ``None`` waits forever.
        (Shards run concurrently, so this bounds the *straggler* wait,
        not the sum.)
    mp_context:
        ``multiprocessing`` start method; default prefers ``"fork"``
        (cheap copy-on-write sharing of the read-only context) and
        falls back to ``"spawn"`` where fork is unavailable.  An
        unavailable explicit method raises :class:`MpContextError`.
    pool:
        An externally-owned :class:`PersistentPool` to run pooled maps
        on (``DepMiner`` and the service share one across runs and
        requests).  Default ``None``: the executor lazily builds its
        own on first pooled map and reuses it across its ``map()``
        calls.  Worker counts must match ``jobs``.
    pool_mode:
        ``"persistent"`` (default) reuses the pool across maps and
        ships context through the shared-memory arena;
        ``"ephemeral"`` restores the legacy one-pool-per-map behaviour
        (context via the pool initializer).
    shm:
        Shared-memory arena switch for the persistent path: ``None``
        (auto) publishes large arrays/blobs whenever
        :mod:`multiprocessing.shared_memory` is usable, ``False``
        forces inline pickling, ``True`` insists on the arena where
        available.  Results are identical either way.
    max_pending:
        Bound on in-flight shards (the result-queue budget); default
        ``2 × jobs``.
    retries / retry_backoff:
        Re-attempts per shard after a retryable failure (typed
        :class:`~repro.errors.ReproError` failures are never retried)
        and the backoff base in seconds — exponential with keyed jitter
        per :class:`~repro.reliability.RetryPolicy`.  ``retries=0``
        disables retry.
    poison_threshold:
        Total failed attempts across one ``map`` after which the pool
        is declared poisoned (a sick worker keeps eating shards) and
        execution degrades to serial immediately.
    degrade:
        Whether a pool that keeps failing falls back to running the
        remaining shards inline (``True``, the default) or raises
        :class:`ShardError` like the pre-reliability executor.  Once an
        executor degrades it stays serial for its remaining ``map``
        calls.
    tracer / metrics / progress:
        The usual observability hooks (:mod:`repro.obs`).  Each
        completed shard is re-recorded as a synthetic ``parallel.shard``
        span, its counters and histograms are merged, and one progress
        step is emitted per completion (so an aborting callback cancels
        the map).
    """

    def __init__(self, jobs: int = 1,
                 shard_timeout: Optional[float] = None,
                 mp_context: Optional[str] = None,
                 max_pending: Optional[int] = None,
                 retries: int = 2,
                 retry_backoff: float = 0.05,
                 poison_threshold: int = 8,
                 degrade: bool = True,
                 pool: Optional[PersistentPool] = None,
                 pool_mode: str = "persistent",
                 shm: Optional[bool] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 progress: Optional[ProgressCallback] = None):
        self.jobs = resolve_jobs(jobs)
        if shard_timeout is not None and shard_timeout <= 0:
            raise ReproError("shard_timeout must be positive or None")
        self.shard_timeout = shard_timeout
        self.mp_context = resolve_start_method(mp_context)
        if pool_mode not in ("persistent", "ephemeral"):
            raise ReproError(
                f"pool_mode must be 'persistent' or 'ephemeral'; "
                f"got {pool_mode!r}"
            )
        self.pool_mode = pool_mode
        self.shm = shm
        if pool is not None and pool.jobs != self.jobs:
            raise ReproError(
                f"external pool has {pool.jobs} worker(s) but the "
                f"executor wants {self.jobs}"
            )
        self._pool = pool
        self._owns_pool = False
        if max_pending is not None and max_pending < 1:
            raise ReproError("max_pending must be a positive integer or None")
        self.max_pending = max_pending
        self.retry_policy = RetryPolicy(retries=retries, base=retry_backoff)
        if poison_threshold < 1:
            raise ReproError("poison_threshold must be a positive integer")
        self.poison_threshold = poison_threshold
        self.degrade = degrade
        self.tracer = tracer
        self.metrics = metrics
        self.progress = progress
        self._degraded = False

    @property
    def serial(self) -> bool:
        return self.jobs <= 1

    @property
    def degraded(self) -> bool:
        """Has this executor fallen back to serial execution for good?"""
        return self._degraded

    @property
    def pool(self) -> Optional[PersistentPool]:
        """The persistent pool this executor runs on (``None`` until a
        pooled map builds the lazily-owned one)."""
        return self._pool

    @property
    def shm_active(self) -> bool:
        """Would a pooled map here publish context through the arena?

        Orchestrators use this to decide input-dependent encodings
        (e.g. packing agree masks into a uint64 matrix) before calling
        :meth:`map`.
        """
        return (not self.serial and not self._degraded
                and self.pool_mode == "persistent"
                and self.shm is not False
                and shm_available())

    def _persistent_pool(self) -> PersistentPool:
        if self._pool is None or self._pool.closed:
            self._pool = PersistentPool(self.jobs,
                                        mp_context=self.mp_context)
            self._owns_pool = True
        return self._pool

    def close(self) -> None:
        """Release the owned persistent pool (no-op for injected pools,
        which their owner — miner or service — closes)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def map(self, kind: str, payloads: Sequence[Any],
            shared: Any = None,
            stage: str = "parallel.shards") -> List[Any]:
        """Run *kind* over every payload; results in payload order.

        The serial path (``jobs=1``, or fewer than two shards) calls
        the shard function inline; otherwise the shards are distributed
        over the pool with a bounded in-flight window.  Either way the
        observability side effects are the same: one synthetic span,
        one counter merge and one *stage* progress step per shard.
        """
        shards = [
            Shard(kind=kind, index=index, payload=payload)
            for index, payload in enumerate(payloads)
        ]
        if not shards:
            return []
        if self.serial or self._degraded or len(shards) == 1:
            return self._map_serial(shards, shared, stage)
        return self._map_pool(shards, shared, stage)

    # -- serial fallback ----------------------------------------------------

    def _serial_attempts(self, shard: Shard, shared: Any) -> ShardOutcome:
        """Run one shard inline with the retry policy.

        Mirrors the pool path's retry semantics — retryable failures
        back off and re-attempt, typed library errors re-raise at once —
        but the *final* failure re-raises the original exception
        unwrapped, preserving the serial path's historical contract.
        """
        function = _shard_function(shard.kind)
        for attempt in range(1, self.retry_policy.attempts + 1):
            local = MetricsRegistry()
            start = time.perf_counter()
            try:
                # In-process injection accounting goes through the
                # plan's bound registry alone; counting into `local`
                # too would double count once it merges back.
                fault_point(
                    "parallel.shard", metrics=NULL_METRICS,
                    kind=shard.kind, index=shard.index, pool=False,
                )
                value = function(shared, shard.payload, local)
            except Exception as exc:
                self._merge_counters(_reliability_counters(local))
                if (isinstance(exc, ReproError)
                        or attempt >= self.retry_policy.attempts):
                    raise
                self._note_retry(shard, attempt,
                                 f"{type(exc).__name__}: {exc}")
                continue
            return ShardOutcome(
                index=shard.index, value=value,
                seconds=time.perf_counter() - start,
                counters=dict(local.counters),
                histograms={
                    name: histogram.to_dict()
                    for name, histogram in local.histograms.items()
                },
            )
        raise AssertionError("unreachable: attempts loop always returns")

    def _map_serial(self, shards: List[Shard], shared: Any,
                    stage: str) -> List[Any]:
        results: List[Any] = []
        for done, shard in enumerate(shards, start=1):
            outcome = self._serial_attempts(shard, shared)
            self._absorb(outcome, shard, done, len(shards), stage)
            results.append(outcome.value)
        return results

    # -- pool path ----------------------------------------------------------

    def _pool_context(self):
        import multiprocessing

        method = self.mp_context
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        return multiprocessing.get_context(method)

    def _map_pool(self, shards: List[Shard], shared: Any,
                  stage: str) -> List[Any]:
        if self.pool_mode == "ephemeral":
            return self._map_pool_ephemeral(shards, shared, stage)
        return self._map_pool_persistent(shards, shared, stage)

    def _run_pooled(self, pool, task, shards: List[Shard],
                    stage: str):
        """The windowed submit/collect loop both pool paths share.

        *task* maps a shard to its ``(function, args)`` submission —
        the ephemeral path ships bare shards (context sits in the
        worker initializer), the persistent path prepends the
        per-generation context descriptor.  Returns
        ``(results, completed, done, degrade_reason)``; failures that
        cannot degrade raise.
        """
        import multiprocessing

        window = self.max_pending or 2 * self.jobs
        total = len(shards)
        results: List[Any] = [None] * total
        completed = [False] * total
        attempts: Dict[int, int] = {}
        failures = 0  # failed attempts across the whole map (poison detector)
        done = 0
        degrade_reason: Optional[str] = None
        pending: deque = deque()

        def submit(shard: Shard) -> None:
            attempts[shard.index] = attempts.get(shard.index, 0) + 1
            function, args = task(shard)
            pending.append((shard, pool.apply_async(function, args)))

        queue = iter(shards[window:])
        for shard in shards[:window]:
            submit(shard)
        while pending:
            shard, handle = pending.popleft()
            try:
                outcome = handle.get(self.shard_timeout)
            except multiprocessing.TimeoutError:
                raise ShardTimeoutError(
                    f"shard {shard.index} ({shard.kind}) exceeded the "
                    f"{self.shard_timeout:g}s per-shard timeout"
                ) from None
            except (OSError, EOFError) as error:
                # The pool's IPC machinery died (worker crash, broken
                # pipe): the pool is unusable, degrade or raise.
                if not self.degrade:
                    raise ShardError(
                        f"worker pool failed while running shard "
                        f"{shard.index} ({shard.kind}): {error}"
                    ) from error
                degrade_reason = f"worker pool failure: {error}"
                break
            if outcome.error is not None:
                failures += 1
                self._absorb(outcome, shard, done, total, stage,
                             progress_step=False)
                if failures >= self.poison_threshold:
                    self._count("parallel.poisoned")
                    logger.warning(
                        "worker pool poisoned: %d failed attempts in "
                        "one map (threshold %d)", failures,
                        self.poison_threshold,
                    )
                    if not self.degrade:
                        raise ShardError(
                            f"worker pool poisoned after {failures} "
                            f"failed attempts; last failure in shard "
                            f"{shard.index} ({shard.kind}):\n"
                            f"{outcome.error}"
                        )
                    degrade_reason = (
                        f"pool poisoned ({failures} failed attempts)"
                    )
                    break
                if (outcome.retryable
                        and attempts[shard.index]
                        <= self.retry_policy.retries):
                    self._note_retry(shard, attempts[shard.index],
                                     outcome.error.strip()
                                     .splitlines()[-1])
                    submit(shard)
                    continue
                if outcome.retryable and self.degrade:
                    degrade_reason = (
                        f"shard {shard.index} ({shard.kind}) failed "
                        f"{attempts[shard.index]} attempt(s)"
                    )
                    break
                raise ShardError(
                    f"shard {shard.index} ({shard.kind}) failed in a "
                    f"worker:\n{outcome.error}"
                )
            done += 1
            completed[outcome.index] = True
            self._absorb(outcome, shard, done, total, stage)
            results[outcome.index] = outcome.value
            for next_shard in queue:
                submit(next_shard)
                break
        return results, completed, done, degrade_reason

    def _map_pool_ephemeral(self, shards: List[Shard], shared: Any,
                            stage: str) -> List[Any]:
        """The legacy path: one pool per map, context via initializer."""
        context = self._pool_context()
        plan = current_plan()
        pool = context.Pool(
            processes=min(self.jobs, len(shards)), initializer=_worker_init,
            initargs=(shared, plan.to_dict() if plan is not None else None),
        )
        try:
            results, completed, done, degrade_reason = self._run_pooled(
                pool, lambda shard: (_run_shard, (shard,)), shards, stage,
            )
            if degrade_reason is None:
                pool.close()
                pool.join()
        except BaseException:
            # Timeout, worker failure or cancellation (ProgressAborted):
            # kill the remaining workers, don't leak the pool.
            pool.terminate()
            pool.join()
            raise
        if degrade_reason is not None:
            pool.terminate()
            pool.join()
            return self._degrade_to_serial(
                shards, shared, stage, results, completed, done,
                degrade_reason,
            )
        return results

    def _map_pool_persistent(self, shards: List[Shard], shared: Any,
                             stage: str) -> List[Any]:
        """The reuse path: shared pool + shared-memory arena context."""
        ppool = self._persistent_pool()
        build_start = time.perf_counter()
        try:
            pool, reused = ppool.ensure()
        except ReproError:
            raise
        except Exception as error:  # noqa: BLE001 - fork/spawn failure
            if not self.degrade:
                raise ShardError(
                    f"could not start the worker pool: {error}"
                ) from error
            return self._degrade_to_serial(
                shards, shared, stage, [None] * len(shards),
                [False] * len(shards), 0,
                f"pool start failed: {error}",
            )
        if reused:
            self._count("parallel.pool_reuse")
        elif self.tracer is not None:
            self.tracer.record(
                "parallel.pool_build", time.perf_counter() - build_start,
                workers=ppool.jobs, mp_context=ppool.mp_context or "auto",
                build=ppool.builds,
            )
        ppool.maps += 1
        plan = current_plan()
        arena = SharedArrayArena(metrics=self.metrics, enabled=self.shm)
        try:
            encode_start = time.perf_counter()
            encoded = arena.encode(shared)
            if arena.segments and self.tracer is not None:
                self.tracer.record(
                    "parallel.arena",
                    time.perf_counter() - encode_start,
                    segments=arena.segments,
                    shm_bytes=arena.bytes_published,
                )
            if (not arena.segments
                    and arena.inline_bytes > _INLINE_CONTEXT_LIMIT
                    and len(shards) > self.jobs):
                # The arena could not offload a heavy context (shm or
                # NumPy unavailable, or shm=False): shipping it with
                # every task would cost more than one legacy pool, so
                # this map falls back to the initializer path.
                return self._map_pool_ephemeral(shards, shared, stage)
            ctx = {
                "generation": uuid.uuid4().hex,
                "shared": encoded,
                "fault_plan": plan.to_dict() if plan is not None else None,
            }
            try:
                results, completed, done, degrade_reason = self._run_pooled(
                    pool, lambda shard: (_run_shard_ctx, (ctx, shard)),
                    shards, stage,
                )
            except BaseException:
                # Timeout, non-degradable failure or cancellation: the
                # pool may hold stuck tasks — terminate it and let the
                # next map (or request) rebuild a fresh one.
                ppool.mark_broken()
                raise
            if degrade_reason is not None:
                ppool.mark_broken()
                return self._degrade_to_serial(
                    shards, shared, stage, results, completed, done,
                    degrade_reason,
                )
            return results
        finally:
            arena.close()

    def _degrade_to_serial(self, shards: List[Shard], shared: Any,
                           stage: str, results: List[Any],
                           completed: List[bool], done: int,
                           reason: str) -> List[Any]:
        """Finish a broken pool map inline; stay serial from here on.

        Only shards without a result re-run, so work counters merged
        from completed shards are never double-counted.  A shard that
        *still* fails inline raises :class:`ShardError` (typed), and the
        original exception text rides along in the message.
        """
        self._degraded = True
        self._count("parallel.degraded")
        logger.warning(
            "degrading to serial execution (%s); %d/%d shard(s) to re-run "
            "inline", reason, len(shards) - sum(completed), len(shards),
        )
        if self.tracer is not None:
            self.tracer.record("reliability.degraded", 0.0, reason=reason)
        total = len(shards)
        for shard in shards:
            if completed[shard.index]:
                continue
            try:
                outcome = self._serial_attempts(shard, shared)
            except ReproError:
                raise
            except Exception as exc:
                raise ShardError(
                    f"shard {shard.index} ({shard.kind}) failed after "
                    f"degrading to serial execution:\n"
                    f"{traceback.format_exc()}"
                ) from exc
            done += 1
            completed[shard.index] = True
            self._absorb(outcome, shard, done, total, stage)
            results[shard.index] = outcome.value
        return results

    # -- observability relay ------------------------------------------------

    def _absorb(self, outcome: ShardOutcome, shard: Shard, done: int,
                total: int, stage: str, progress_step: bool = True) -> None:
        """Relay one shard outcome into the tracer/metrics/progress hooks.

        Failed attempts pass ``progress_step=False``: their span (status
        ``error``) and reliability counters are recorded, but the
        done-count only advances on completion.
        """
        if self.tracer is not None:
            self.tracer.record(
                "parallel.shard", outcome.seconds, kind=shard.kind,
                shard=shard.index, status="error" if outcome.error else "ok",
            )
        if self.metrics is not None:
            for name, value in outcome.counters.items():
                self.metrics.inc(name, value)
            for name, summary in outcome.histograms.items():
                self.metrics.merge_histogram(name, summary)
        if self.progress is not None and progress_step:
            emit_progress(self.progress, stage, done, total)

    def _count(self, name: str, value: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)

    def _merge_counters(self, counters: Dict[str, float]) -> None:
        if self.metrics is not None:
            for name, value in counters.items():
                self.metrics.inc(name, value)

    def _note_retry(self, shard: Shard, attempt: int, cause: str) -> None:
        """Count, trace and back off before re-attempt *attempt*."""
        backoff = self.retry_policy.backoff(attempt, token=shard.index)
        self._count("parallel.retry")
        if self.tracer is not None:
            self.tracer.record(
                "reliability.retry", backoff, kind=shard.kind,
                shard=shard.index, attempt=attempt, cause=cause,
            )
        logger.info(
            "retrying shard %d (%s) after attempt %d (%s); backing off "
            "%.3fs", shard.index, shard.kind, attempt, cause, backoff,
        )
        time.sleep(backoff)

    def __repr__(self) -> str:
        if self.serial:
            mode = "serial"
        elif self._degraded:
            mode = f"{self.jobs} workers, degraded to serial"
        else:
            mode = f"{self.jobs} workers"
        timeout = (
            f", timeout={self.shard_timeout:g}s" if self.shard_timeout else ""
        )
        return f"ShardedExecutor({mode}{timeout})"
