"""The sharded process-pool executor behind ``--jobs N``.

Dep-Miner's two dominant costs are embarrassingly parallel: couples
shard by chunk (each chunk resolves against the same read-only
row → class-index tables) and the per-attribute transversal searches are
mutually independent.  :class:`ShardedExecutor` is the one execution
primitive both integrations share:

- **work descriptors** — a :class:`Shard` is ``(kind, index, payload)``,
  picklable by construction; the *kind* names a registered worker
  function (see :func:`register_shard_kind`) and the heavy read-only
  context travels once per worker through the pool initializer, not
  once per shard;
- **serial fallback** — ``jobs=1`` (the default everywhere) runs the
  very same shard functions inline, in order, with no pool, no pickling
  and no behavioural difference: the parallel layer is a pure execution
  strategy, never a second implementation of the algorithms;
- **bounded result queue** — at most ``max_pending`` shards are in
  flight; submission is windowed so a thousand-shard run never
  materialises a thousand result buffers;
- **per-shard timeout + cancellation** — each shard's result is awaited
  with a deadline (:class:`ShardTimeoutError` terminates the pool), and
  a progress callback returning ``False`` aborts the whole map through
  the usual :class:`~repro.obs.ProgressAborted` channel;
- **observability from workers** — a worker cannot write into the
  parent's tracer, so every shard reports its wall-clock seconds plus
  the counters and histogram summaries of a shard-local
  :class:`~repro.obs.MetricsRegistry` through the result queue; the
  parent re-records each shard as a synthetic span
  (:meth:`repro.obs.Tracer.record`), merges the counters
  (:meth:`~repro.obs.MetricsRegistry.inc`) and histograms
  (:meth:`~repro.obs.MetricsRegistry.merge_histogram`) into its own
  registry and emits one progress step per completed shard.

Determinism guarantee: results are reassembled by shard index, so
``map()`` returns exactly what the serial loop would — the callers
(``parallel_agree_sets``, ``parallel_cmax_lhs``) are bit-for-bit
identical to ``jobs=1``.  See ``docs/parallel.md``.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    ProgressCallback,
    Tracer,
    emit_progress,
    get_logger,
)

__all__ = [
    "Shard",
    "ShardOutcome",
    "ShardError",
    "ShardTimeoutError",
    "ShardedExecutor",
    "register_shard_kind",
    "resolve_jobs",
]

logger = get_logger(__name__)


class ShardError(ReproError):
    """A shard failed in a worker process (carries the worker traceback)."""


class ShardTimeoutError(ShardError):
    """A shard exceeded the per-shard timeout; the pool was terminated."""


@dataclass(frozen=True)
class Shard:
    """One unit of work: a registered *kind* plus a picklable *payload*."""

    kind: str
    index: int
    payload: Any


@dataclass
class ShardOutcome:
    """What a worker sends back through the result queue for one shard."""

    index: int
    value: Any = None
    seconds: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    error: Optional[str] = None


#: Registered shard functions: ``kind -> fn(shared, payload, metrics)``.
SHARD_KINDS: Dict[str, Callable[[Any, Any, MetricsRegistry], Any]] = {}


def register_shard_kind(name: str):
    """Register a worker function under *name* (module-level, picklable).

    The function receives ``(shared, payload, metrics)``: the read-only
    context shipped once per worker, the shard's own payload, and a
    shard-local :class:`~repro.obs.MetricsRegistry` — its counters and
    histogram summaries travel back through the result queue and the
    parent merges them, which is how worker-side work accounting flows
    into the run's metrics.  (Gauges do not merge meaningfully across
    shards and are not relayed.)
    """

    def decorator(function):
        SHARD_KINDS[name] = function
        return function

    return decorator


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` = all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ReproError(f"jobs must be a positive integer, 0 or None; "
                         f"got {jobs}")
    return jobs


# -- worker side (module-level so 'spawn' contexts can pickle them) ----------

_WORKER_SHARED: Any = None


def _worker_init(shared: Any) -> None:
    global _WORKER_SHARED
    _WORKER_SHARED = shared


def _run_shard(shard: Shard) -> ShardOutcome:
    start = time.perf_counter()
    local = MetricsRegistry()
    try:
        function = _shard_function(shard.kind)
        value = function(_WORKER_SHARED, shard.payload, local)
        return ShardOutcome(
            index=shard.index, value=value,
            seconds=time.perf_counter() - start,
            counters=dict(local.counters),
            histograms={
                name: histogram.to_dict()
                for name, histogram in local.histograms.items()
            },
        )
    except Exception:
        return ShardOutcome(
            index=shard.index, seconds=time.perf_counter() - start,
            error=traceback.format_exc(),
        )


def _shard_function(kind: str):
    try:
        return SHARD_KINDS[kind]
    except KeyError:
        # A 'spawn' worker imports this module alone; the built-in kinds
        # live in repro.parallel.shards — import them once and retry.
        import repro.parallel.shards  # noqa: F401  (registers kinds)

        try:
            return SHARD_KINDS[kind]
        except KeyError:
            raise ReproError(f"unknown shard kind {kind!r}") from None


# -- the executor ------------------------------------------------------------

class ShardedExecutor:
    """Run registered shard kinds over a process pool (or inline).

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs everything inline — the
        guaranteed-identical serial path; ``None``/``0`` means all
        cores.
    shard_timeout:
        Seconds to wait for each shard's result before terminating the
        pool with :class:`ShardTimeoutError`.  ``None`` waits forever.
        (Shards run concurrently, so this bounds the *straggler* wait,
        not the sum.)
    mp_context:
        ``multiprocessing`` start method; default prefers ``"fork"``
        (cheap copy-on-write sharing of the read-only context) and
        falls back to ``"spawn"`` where fork is unavailable.
    max_pending:
        Bound on in-flight shards (the result-queue budget); default
        ``2 × jobs``.
    tracer / metrics / progress:
        The usual observability hooks (:mod:`repro.obs`).  Each
        completed shard is re-recorded as a synthetic ``parallel.shard``
        span, its counters and histograms are merged, and one progress
        step is emitted per completion (so an aborting callback cancels
        the map).
    """

    def __init__(self, jobs: int = 1,
                 shard_timeout: Optional[float] = None,
                 mp_context: Optional[str] = None,
                 max_pending: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 progress: Optional[ProgressCallback] = None):
        self.jobs = resolve_jobs(jobs)
        if shard_timeout is not None and shard_timeout <= 0:
            raise ReproError("shard_timeout must be positive or None")
        self.shard_timeout = shard_timeout
        self.mp_context = mp_context
        if max_pending is not None and max_pending < 1:
            raise ReproError("max_pending must be a positive integer or None")
        self.max_pending = max_pending
        self.tracer = tracer
        self.metrics = metrics
        self.progress = progress

    @property
    def serial(self) -> bool:
        return self.jobs <= 1

    def map(self, kind: str, payloads: Sequence[Any],
            shared: Any = None,
            stage: str = "parallel.shards") -> List[Any]:
        """Run *kind* over every payload; results in payload order.

        The serial path (``jobs=1``, or fewer than two shards) calls
        the shard function inline; otherwise the shards are distributed
        over the pool with a bounded in-flight window.  Either way the
        observability side effects are the same: one synthetic span,
        one counter merge and one *stage* progress step per shard.
        """
        shards = [
            Shard(kind=kind, index=index, payload=payload)
            for index, payload in enumerate(payloads)
        ]
        if not shards:
            return []
        if self.serial or len(shards) == 1:
            return self._map_serial(shards, shared, stage)
        return self._map_pool(shards, shared, stage)

    # -- serial fallback ----------------------------------------------------

    def _map_serial(self, shards: List[Shard], shared: Any,
                    stage: str) -> List[Any]:
        function = _shard_function(shards[0].kind)
        results: List[Any] = []
        for done, shard in enumerate(shards, start=1):
            local = MetricsRegistry()
            start = time.perf_counter()
            value = function(shared, shard.payload, local)
            self._absorb(
                ShardOutcome(
                    index=shard.index, value=value,
                    seconds=time.perf_counter() - start,
                    counters=dict(local.counters),
                    histograms={
                        name: histogram.to_dict()
                        for name, histogram in local.histograms.items()
                    },
                ),
                shard, done, len(shards), stage,
            )
            results.append(value)
        return results

    # -- pool path ----------------------------------------------------------

    def _pool_context(self):
        import multiprocessing

        method = self.mp_context
        if method is None:
            available = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in available else "spawn"
        return multiprocessing.get_context(method)

    def _map_pool(self, shards: List[Shard], shared: Any,
                  stage: str) -> List[Any]:
        import multiprocessing

        context = self._pool_context()
        processes = min(self.jobs, len(shards))
        window = self.max_pending or 2 * self.jobs
        results: List[Any] = [None] * len(shards)
        pool = context.Pool(
            processes=processes, initializer=_worker_init,
            initargs=(shared,),
        )
        try:
            pending: deque = deque()
            queue = iter(shards[window:])
            for shard in shards[:window]:
                pending.append((shard, pool.apply_async(_run_shard, (shard,))))
            done = 0
            while pending:
                shard, handle = pending.popleft()
                try:
                    outcome = handle.get(self.shard_timeout)
                except multiprocessing.TimeoutError:
                    raise ShardTimeoutError(
                        f"shard {shard.index} ({shard.kind}) exceeded the "
                        f"{self.shard_timeout:g}s per-shard timeout"
                    ) from None
                done += 1
                self._absorb(outcome, shard, done, len(shards), stage)
                if outcome.error is not None:
                    raise ShardError(
                        f"shard {shard.index} ({shard.kind}) failed in a "
                        f"worker:\n{outcome.error}"
                    )
                results[outcome.index] = outcome.value
                for next_shard in queue:
                    pending.append(
                        (next_shard, pool.apply_async(_run_shard, (next_shard,)))
                    )
                    break
            pool.close()
            pool.join()
        except BaseException:
            # Timeout, worker failure or cancellation (ProgressAborted):
            # kill the remaining workers, don't leak the pool.
            pool.terminate()
            pool.join()
            raise
        return results

    # -- observability relay ------------------------------------------------

    def _absorb(self, outcome: ShardOutcome, shard: Shard, done: int,
                total: int, stage: str) -> None:
        if self.tracer is not None:
            self.tracer.record(
                "parallel.shard", outcome.seconds, kind=shard.kind,
                shard=shard.index, status="error" if outcome.error else "ok",
            )
        if self.metrics is not None:
            for name, value in outcome.counters.items():
                self.metrics.inc(name, value)
            for name, summary in outcome.histograms.items():
                self.metrics.merge_histogram(name, summary)
        if self.progress is not None:
            emit_progress(self.progress, stage, done, total)

    def __repr__(self) -> str:
        mode = "serial" if self.serial else f"{self.jobs} workers"
        timeout = (
            f", timeout={self.shard_timeout:g}s" if self.shard_timeout else ""
        )
        return f"ShardedExecutor({mode}{timeout})"
