"""``repro.parallel`` — the sharded process-pool execution layer.

Dep-Miner's two dominant costs are embarrassingly parallel, and this
package is the ``--jobs N`` machinery that exploits it:

- :mod:`repro.parallel.executor` — :class:`ShardedExecutor`: a process
  pool with a guaranteed-identical serial fallback, picklable
  :class:`Shard` work descriptors, a bounded in-flight window, a
  per-shard timeout, cancellation through the progress-callback
  channel, and worker observability (seconds + counters) relayed back
  through the result queue;
- :mod:`repro.parallel.shards` — the two pipeline integrations:
  :func:`parallel_agree_sets` (couple chunks resolved against shared
  read-only row → class-index tables) and :func:`parallel_cmax_lhs`
  (``CMAX_SET`` + transversal search fanned out per RHS attribute).

``jobs=1`` — the default of every entry point — is *exactly* today's
serial pipeline; any ``jobs`` value yields bit-for-bit identical FD
covers, agree sets, cmax sets and Armstrong relations (held by the
differential suite in ``tests/test_parallel.py``).  See
``docs/parallel.md`` for the design notes.
"""

from __future__ import annotations

from repro.parallel.executor import (
    Shard,
    ShardedExecutor,
    ShardError,
    ShardOutcome,
    ShardTimeoutError,
    register_shard_kind,
    resolve_jobs,
)
from repro.parallel.shards import parallel_agree_sets, parallel_cmax_lhs

__all__ = [
    "Shard",
    "ShardOutcome",
    "ShardError",
    "ShardTimeoutError",
    "ShardedExecutor",
    "register_shard_kind",
    "resolve_jobs",
    "parallel_agree_sets",
    "parallel_cmax_lhs",
]
