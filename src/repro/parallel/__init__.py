"""``repro.parallel`` — the sharded process-pool execution layer.

Dep-Miner's two dominant costs are embarrassingly parallel, and this
package is the ``--jobs N`` machinery that exploits it:

- :mod:`repro.parallel.executor` — :class:`ShardedExecutor`: a process
  pool with a guaranteed-identical serial fallback, picklable
  :class:`Shard` work descriptors, a bounded in-flight window, a
  per-shard timeout, cancellation through the progress-callback
  channel, and worker observability (seconds + counters) relayed back
  through the result queue.  Pooled maps run on a lazily-built
  :class:`PersistentPool` reused across maps, runs and service
  requests (``pool_mode="ephemeral"`` restores the legacy
  one-pool-per-map behaviour);
- :mod:`repro.parallel.shm` — :class:`SharedArrayArena`: zero-copy
  publication of the heavy read-only shard context (code/class
  matrices, packed agree bitsets, pickled-once blobs) through
  ``multiprocessing.shared_memory``, with graceful inline fallback
  when NumPy or shared memory is unavailable;
- :mod:`repro.parallel.shards` — the pipeline integrations:
  :func:`parallel_agree_sets` (couple chunks resolved against shared
  read-only row → class-index tables), the columnar couple-range
  variant, and :func:`parallel_cmax_lhs` (``CMAX_SET`` + transversal
  search fanned out per RHS attribute).

``jobs=1`` — the default of every entry point — is *exactly* today's
serial pipeline; any ``jobs`` value yields bit-for-bit identical FD
covers, agree sets, cmax sets and Armstrong relations (held by the
differential suite in ``tests/test_parallel.py`` and the
backend × jobs × shm × pool-mode oracle grid).  See
``docs/parallel.md`` for the design notes.
"""

from __future__ import annotations

from repro.parallel.executor import (
    MpContextError,
    PersistentPool,
    Shard,
    ShardedExecutor,
    ShardError,
    ShardOutcome,
    ShardTimeoutError,
    register_shard_kind,
    resolve_jobs,
    resolve_start_method,
)
from repro.parallel.shards import parallel_agree_sets, parallel_cmax_lhs
from repro.parallel.shm import SharedArrayArena, shm_available

__all__ = [
    "MpContextError",
    "PersistentPool",
    "Shard",
    "ShardOutcome",
    "ShardError",
    "ShardTimeoutError",
    "ShardedExecutor",
    "SharedArrayArena",
    "register_shard_kind",
    "resolve_jobs",
    "resolve_start_method",
    "shm_available",
    "parallel_agree_sets",
    "parallel_cmax_lhs",
]
