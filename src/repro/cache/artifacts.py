"""Pack/unpack pipeline artefacts to codec-representable payloads.

The store (:mod:`repro.cache.store`) only traffics in plain containers
of ints and strings; these helpers translate the pipeline's object
types — :class:`~repro.partitions.database.StrippedPartitionDatabase`,
``ag(r)`` mask sets, the per-attribute cmax/lhs families and the FD
cover — into that shape and back.

Unpackers always build *fresh* containers (and re-validate through the
normal constructors), so artefacts coming out of the cache are never
aliased with the store's copy: mutating a returned result cannot poison
later hits.

Payload schemas (informal; ``docs/caching.md`` documents the on-disk
framing around them):

- ``partitions``  ``{"names": (...), "rows": n, "classes": [[class…]…]}``
  — one list of row-index classes per attribute, in schema order;
- ``agree``       ``{"agree": {mask…}, "stats": {...}}``;
- ``cover``       ``{"agree": {mask…}, "max": {attr: [mask…]},
  "cmax": …, "lhs": …, "fds": [(lhs_mask, rhs)…], "stats": {...}}``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.core.attributes import AttributeSet, Schema
from repro.errors import CacheCodecError
from repro.fd.fd import FD
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.partition import StrippedPartition

__all__ = [
    "pack_partitions",
    "unpack_partitions",
    "pack_agree",
    "unpack_agree",
    "pack_cover",
    "unpack_cover",
]


def pack_partitions(spdb: StrippedPartitionDatabase) -> Dict[str, Any]:
    """``r̂`` as a plain payload (schema names, row count, class lists)."""
    return {
        "names": tuple(spdb.schema.names),
        "rows": spdb.num_rows,
        "classes": [
            [list(cls) for cls in partition] for _attr, partition in spdb
        ],
    }


def unpack_partitions(payload: Dict[str, Any]) -> StrippedPartitionDatabase:
    """Rebuild the stripped partition database from a payload.

    Goes through the normal constructors, so structurally invalid
    payloads (singleton classes, out-of-range rows) are rejected as
    :class:`CacheCodecError` rather than corrupting the pipeline.
    """
    try:
        schema = Schema(payload["names"])
        num_rows = payload["rows"]
        partitions = {
            index: StrippedPartition(classes, num_rows)
            for index, classes in enumerate(payload["classes"])
        }
        return StrippedPartitionDatabase(schema, partitions, num_rows)
    except CacheCodecError:
        raise
    except Exception as error:
        raise CacheCodecError(
            f"invalid partitions payload: {error}"
        ) from error


def pack_agree(agree: Set[int], stats: Dict[str, int]) -> Dict[str, Any]:
    """``ag(r)`` plus the enumeration counters it was computed with."""
    return {"agree": set(agree), "stats": _int_stats(stats)}


def unpack_agree(payload: Dict[str, Any]) -> Tuple[Set[int], Dict[str, int]]:
    try:
        return set(payload["agree"]), dict(payload["stats"])
    except Exception as error:
        raise CacheCodecError(f"invalid agree payload: {error}") from error


def pack_cover(agree: Set[int],
               max_sets: Dict[int, List[int]],
               cmax_sets: Dict[int, List[int]],
               lhs_sets: Dict[int, List[int]],
               fds: List[FD],
               stats: Dict[str, int]) -> Dict[str, Any]:
    """The full derivation bundle behind one mined FD cover."""
    return {
        "agree": set(agree),
        "max": {attr: list(masks) for attr, masks in max_sets.items()},
        "cmax": {attr: list(masks) for attr, masks in cmax_sets.items()},
        "lhs": {attr: list(masks) for attr, masks in lhs_sets.items()},
        "fds": [(fd.lhs.mask, fd.rhs_index) for fd in fds],
        "stats": _int_stats(stats),
    }


def unpack_cover(payload: Dict[str, Any], schema: Schema):
    """``(agree, max_sets, cmax_sets, lhs_sets, fds, stats)`` — fresh
    containers, FDs rebuilt over *schema*."""
    try:
        agree = set(payload["agree"])
        max_sets = {
            attr: list(masks) for attr, masks in payload["max"].items()
        }
        cmax_sets = {
            attr: list(masks) for attr, masks in payload["cmax"].items()
        }
        lhs_sets = {
            attr: list(masks) for attr, masks in payload["lhs"].items()
        }
        fds = [
            FD(AttributeSet(schema, lhs_mask), rhs)
            for lhs_mask, rhs in payload["fds"]
        ]
        stats = dict(payload["stats"])
        return agree, max_sets, cmax_sets, lhs_sets, fds, stats
    except Exception as error:
        raise CacheCodecError(f"invalid cover payload: {error}") from error


def _int_stats(stats: Dict[str, int]) -> Dict[str, int]:
    return {name: value for name, value in stats.items()
            if isinstance(value, int)}
