"""Content fingerprints for relations and pipeline-stage cache keys.

Every artefact of the Dep-Miner pipeline (stripped partitions, ``ag(r)``,
the cmax families, the FD cover) is a pure function of the input relation
and the stage configuration, so a stable content hash of both is a sound
cache key.  Two design points:

**Row-permutation invariance.**  ``ag(r)``, the maximal sets and the FD
cover are invariant under row permutation (the tests pin this down as a
hypothesis property), so the relation fingerprint combines per-row
digests with a *commutative* reduction (a 128-bit modular sum plus the
row count): ``r`` and any shuffle of ``r`` share one cache entry.  Row
digests themselves are built column-wise — a polynomial mix over the
per-column value digests, salted by attribute position — and passed
through a non-linear finalizer *before* the sum.  The finalizer is what
makes the *alignment* of values across columns (which does change the
FDs) stick: summing the raw polynomials would be linear, and linearity
collapses the total to a function of the per-column value multisets
alone, so relations differing only in row alignment would collide.
Duplicated rows contribute multiplicity through the sum.

**Stability.**  Value digests use :func:`hashlib.blake2b` over
type-tagged byte encodings rather than Python's salted ``hash()``, so
the on-disk tier survives interpreter restarts.  Values outside the
common CSV types (``None``/bool/int/float/str/bytes) fall back to their
``repr``; callers holding exotic value types with unstable reprs should
not share a disk cache across processes (the guard digest still protects
against schema/row-count confusion — see :mod:`repro.cache.store`).

:class:`RelationFingerprint` is incremental: the commutative reduction
means appending rows only requires digesting the *new* rows, which is
what keeps :class:`repro.cache.incremental.IncrementalMiner`'s
bookkeeping linear in the appended batch.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.attributes import Schema
from repro.core.relation import Relation

__all__ = [
    "RelationFingerprint",
    "fingerprint_relation",
    "fingerprint_from_codes",
    "stage_key",
    "PipelineKeys",
]

#: 128-bit accumulator space for the commutative row-digest sum.
_MOD = 1 << 128
_MASK = _MOD - 1
#: Odd multiplier for the column-position polynomial mix (splitmix-style).
_PRIME = 0x9E3779B97F4A7C15F39CC0605CEDC835 | 1
#: Odd multipliers for the murmur-style row-digest finalizer.
_MIX1 = 0x2545F4914F6CDD1D27D4EB2F165667C5 | 1
_MIX2 = 0xC2B2AE3D27D4EB4F9E3779B185EBCA87 | 1


def _mix(acc: int) -> int:
    """Non-linear 128-bit finalizer (murmur-style xorshift–multiply).

    Applied to each row's polynomial digest before the commutative sum;
    without it the sum is linear in the value digests and loses the
    cross-column alignment of values (see the module docstring).
    """
    acc ^= acc >> 65
    acc = (acc * _MIX1) & _MASK
    acc ^= acc >> 67
    acc = (acc * _MIX2) & _MASK
    acc ^= acc >> 65
    return acc


def _value_bytes(value: Any) -> bytes:
    """A stable, type-tagged byte encoding of one cell value."""
    if value is None:
        return b"N"
    if value is True:
        return b"T"
    if value is False:
        return b"F"
    if isinstance(value, str):
        return b"s" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, bytes):
        return b"b" + value
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"f" + repr(value).encode("ascii")
    return b"r" + repr(value).encode("utf-8", "backslashreplace")


def _value_digest(value: Any) -> int:
    return int.from_bytes(
        hashlib.blake2b(_value_bytes(value), digest_size=16).digest(), "big"
    )


def _column_salt(index: int, name: str) -> int:
    payload = f"{index}:{name}".encode("utf-8")
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=16).digest(), "big"
    )


class RelationFingerprint:
    """Order-insensitive, incrementally updatable relation fingerprint.

    Feed rows (or whole column batches) in any order and in any number
    of batches; :attr:`key` only depends on the schema, the null
    semantics and the *multiset* of rows seen so far.
    """

    def __init__(self, schema: Schema, nulls_equal: bool = True):
        self._schema = schema
        self._nulls_equal = nulls_equal
        self._salts = [
            _column_salt(i, name) for i, name in enumerate(schema.names)
        ]
        # One memo dict per column: distinct values are digested once.
        self._memos: List[Dict[Any, int]] = [{} for _ in schema.names]
        self._count = 0
        self._sum = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        """Rows folded in so far."""
        return self._count

    def update_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Fold an iterable of row tuples into the fingerprint."""
        salts = self._salts
        memos = self._memos
        width = len(salts)
        total = 0
        count = 0
        for row in rows:
            if len(row) != width:
                raise ValueError(
                    f"row has arity {len(row)}, schema has {width}"
                )
            acc = 0
            for index in range(width):
                value = row[index]
                memo = memos[index]
                digest = memo.get(value)
                if digest is None:
                    digest = memo[value] = _value_digest(value)
                acc = (acc * _PRIME + (digest ^ salts[index])) & _MASK
            total = (total + _mix(acc)) & _MASK
            count += 1
        self._sum = (self._sum + total) & _MASK
        self._count += count

    def update_columns(self, columns: Sequence[Sequence[Any]]) -> None:
        """Fold a batch given column-wise (the :class:`Relation` layout).

        Column-wise iteration digests each distinct value of a column
        once per batch, which is the fast path for the low-cardinality
        columns the synthetic workloads produce.
        """
        salts = self._salts
        memos = self._memos
        if len(columns) != len(salts):
            raise ValueError(
                f"expected {len(salts)} columns, got {len(columns)}"
            )
        if not columns:
            return
        batch = len(columns[0])
        accs = [0] * batch
        for index, column in enumerate(columns):
            if len(column) != batch:
                raise ValueError("ragged column batch")
            memo = memos[index]
            salt = salts[index]
            for row, value in enumerate(column):
                digest = memo.get(value)
                if digest is None:
                    digest = memo[value] = _value_digest(value)
                accs[row] = (accs[row] * _PRIME + (digest ^ salt)) & _MASK
        self._sum = (self._sum + sum(map(_mix, accs))) & _MASK
        self._count += batch

    def update_codes(self, codes: Sequence[Sequence[int]],
                     uniques: Sequence[Sequence[Any]]) -> None:
        """Fold a factorized batch (the columnar ingest layout).

        ``codes`` holds one dense code sequence per column and
        ``uniques`` the decoded value of each code, exactly as
        :func:`repro.columnar.encode.encode_column` produces them.
        Each distinct value is digested once (off its ``uniques`` slot)
        and rows are mixed by code lookup, so the result equals
        :meth:`update_rows` over the decoded rows without ever
        materializing them.  Works on plain sequences — NumPy arrays
        are accepted but not required.
        """
        salts = self._salts
        if len(codes) != len(salts) or len(uniques) != len(salts):
            raise ValueError(
                f"expected {len(salts)} coded columns, "
                f"got {len(codes)} codes / {len(uniques)} uniques"
            )
        if not salts:
            return
        batch: Optional[int] = None
        accs: List[int] = []
        for index in range(len(salts)):
            column = codes[index]
            column = column.tolist() if hasattr(column, "tolist") \
                else list(column)
            if batch is None:
                batch = len(column)
                accs = [0] * batch
            elif len(column) != batch:
                raise ValueError("ragged coded column batch")
            salt = salts[index]
            memo = self._memos[index]
            digests = []
            for value in uniques[index]:
                digest = memo.get(value)
                if digest is None:
                    digest = memo[value] = _value_digest(value)
                digests.append(digest ^ salt)
            for row, code in enumerate(column):
                accs[row] = (accs[row] * _PRIME + digests[code]) & _MASK
        self._sum = (self._sum + sum(map(_mix, accs))) & _MASK
        self._count += batch or 0

    @property
    def key(self) -> str:
        """The content key: a hex blake2b digest of schema + row multiset."""
        header = "\x1f".join(self._schema.names).encode("utf-8")
        payload = b"relfp-v1|%s|%d|%d|%d" % (
            header,
            1 if self._nulls_equal else 0,
            self._count,
            self._sum,
        )
        return hashlib.blake2b(payload, digest_size=16).hexdigest()

    def copy(self) -> "RelationFingerprint":
        """An independent snapshot (memo dicts are shared copy-on-write)."""
        clone = RelationFingerprint(self._schema, self._nulls_equal)
        clone._memos = [dict(memo) for memo in self._memos]
        clone._count = self._count
        clone._sum = self._sum
        return clone

    def __repr__(self) -> str:
        return (
            f"RelationFingerprint(width={len(self._schema)}, "
            f"rows={self._count}, key={self.key})"
        )


def fingerprint_relation(relation: Relation,
                         nulls_equal: bool = True) -> str:
    """The content key of *relation* (see :class:`RelationFingerprint`)."""
    fingerprint = RelationFingerprint(relation.schema, nulls_equal)
    fingerprint.update_columns(
        [relation.column(i) for i in range(len(relation.schema))]
    )
    return fingerprint.key


def fingerprint_from_codes(codes: Sequence[Sequence[int]],
                           uniques: Sequence[Sequence[Any]],
                           schema: Schema,
                           nulls_equal: bool = True) -> str:
    """The content key straight from a factorized code matrix.

    Equal to ``fingerprint_relation`` of the decoded relation — the
    hypothesis suite pins the equality and the shared row-permutation
    invariance — but computed without materializing any row, which is
    what lets a streaming ingest serve cache full-hits before a
    :class:`~repro.core.relation.Relation` exists.
    """
    fingerprint = RelationFingerprint(schema, nulls_equal)
    fingerprint.update_codes(codes, uniques)
    return fingerprint.key


def stage_key(relation_key: str, stage: str, **config: Any) -> str:
    """Key of one pipeline stage: relation content + stage configuration.

    Configuration items are folded in sorted order so keyword order
    never matters; values are rendered with ``repr`` (stage configs are
    primitives: algorithm names, integers, ``None``, booleans).
    """
    parts = [f"stage-v1|{stage}|{relation_key}"]
    for name in sorted(config):
        parts.append(f"{name}={config[name]!r}")
    return hashlib.blake2b(
        "|".join(parts).encode("utf-8"), digest_size=16
    ).hexdigest()


class PipelineKeys:
    """The per-stage cache keys of one ``DepMiner`` configuration.

    Keys deliberately over-approximate the invalidation rules — e.g.
    ``jobs``, the agree algorithm and the mining ``backend`` are folded
    into the agree-set key even though every algorithm, backend and job
    count produce identical ``ag(r)`` — so a cached artefact is only
    ever reused under the exact configuration that produced it (see
    ``docs/caching.md``).
    """

    __slots__ = ("relation", "partitions", "agree", "cover")

    def __init__(self, relation_key: str, *, nulls_equal: bool,
                 agree_algorithm: str, max_couples, jobs: int,
                 transversal_method: str, max_lhs_size,
                 backend: str = "python"):
        self.relation = relation_key
        self.partitions = stage_key(
            relation_key, "partitions", nulls_equal=nulls_equal
        )
        self.agree = stage_key(
            relation_key, "agree", nulls_equal=nulls_equal,
            algorithm=agree_algorithm, max_couples=max_couples, jobs=jobs,
            backend=backend,
        )
        self.cover = stage_key(
            relation_key, "cover", nulls_equal=nulls_equal,
            algorithm=agree_algorithm, max_couples=max_couples, jobs=jobs,
            method=transversal_method, max_lhs_size=max_lhs_size,
            backend=backend,
        )

    @classmethod
    def for_miner(cls, relation_key: str, miner) -> "PipelineKeys":
        """The stage keys of a :class:`~repro.core.depminer.DepMiner`."""
        return cls(
            relation_key,
            nulls_equal=miner.nulls_equal,
            agree_algorithm=miner.agree_algorithm,
            max_couples=miner.max_couples,
            jobs=miner.jobs,
            transversal_method=miner.transversal_method,
            max_lhs_size=miner.max_lhs_size,
            backend=getattr(miner, "backend", "python"),
        )

    def __repr__(self) -> str:
        return f"PipelineKeys(relation={self.relation})"
