"""Incremental append-only re-mining (the cache's delta path).

Appending rows to a relation only ever *adds* tuple couples: every new
couple contains at least one appended row, and the agree set of an old
couple never changes.  ``IncrementalMiner`` exploits this:

- the stripped partitions are updated **in place** — per-attribute
  value → rows group maps absorb the appended rows, and only groups a
  new row touches change;
- the agree-set sweep resolves **only the delta couples** (new × old
  plus new × new pairs that share at least one equivalence class), an
  O(new × total) enumeration instead of the O(total²)-bounded cold
  sweep;
- the delta masks are merged with the previous ``ag(r)`` (``∅``
  membership is monotone under appends, and a never-visited delta pair
  signals it exactly as in the cold algorithms);
- only the comparatively cheap cmax/transversal tail re-derives, via
  :meth:`repro.core.depminer.DepMiner.derive_from_agree_sets`.

The output is identical to a cold ``DepMiner.run`` on the concatenated
relation — the differential/hypothesis tests assert agree sets, cmax
families and FD covers are equal for arbitrary append sequences.  When
the wrapped miner carries an :class:`~repro.cache.store.ArtifactStore`,
each append also publishes the updated artefacts under the *grown*
relation's content keys, so a later cold run over the same data is a
warm hit.

Parallelism: with ``jobs > 1`` the delta couples are resolved in chunks
through the same :class:`~repro.parallel.executor.ShardedExecutor`
shard kinds (``agree.couples`` / ``agree.identifiers``) as a cold
parallel run, against tables built from the updated partitions.

Concurrency: appends are serialized on a per-instance mutex (the
long-lived service keeps one ``IncrementalMiner`` per session and feeds
it from worker threads); a re-entrant ``append`` on the same thread
raises :class:`~repro.errors.CacheError`.

With a columnar-backend miner the delta enters as **code-matrix
slices**: per-attribute encoder dicts (seeded from the initial
relation's factorization — reused verbatim from a
:class:`~repro.columnar.ingest.CodedRelation` when the null semantics
match) assign codes to appended rows, each batch appends one
``(width, new)`` int64 slice, and the delta couples resolve through
the vectorized :func:`repro.columnar.agree.resolve_couples` (sharded
into ranges under ``jobs > 1``) instead of the per-couple Python
resolution.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from itertools import combinations
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.agree_sets import (
    build_class_index_tables,
    resolve_couples_with_identifiers,
    resolve_couples_with_tables,
)
from repro.core.depminer import DepMiner, DepMinerResult
from repro.core.relation import Relation
from repro.errors import CacheError, ReproError
from repro.obs import NULL_METRICS, MetricsRegistry, Tracer, get_logger
from repro.partitions.database import StrippedPartitionDatabase
from repro.partitions.partition import StrippedPartition

__all__ = ["IncrementalMiner"]

logger = get_logger(__name__)


class IncrementalMiner:
    """Append-only incremental wrapper around a :class:`DepMiner`.

    >>> from repro.core.attributes import Schema
    >>> from repro.core.relation import Relation
    >>> relation = Relation.from_rows(
    ...     Schema.of_width(3), [(0, 1, 2), (0, 1, 0)]
    ... )
    >>> inc = IncrementalMiner(relation, build_armstrong="none")
    >>> result = inc.append([(1, 0, 2)])  # == a cold run on all 3 rows
    >>> inc.num_rows
    3

    Parameters
    ----------
    relation:
        The initial relation — a :class:`Relation` or a
        :class:`~repro.columnar.ingest.CodedRelation` from the
        streaming ingest path; it is cold-mined once at construction
        time (through the wrapped miner, so a configured cache can
        already short-circuit that run, and a coded relation feeds the
        columnar backend without re-encoding).
    miner:
        An optional pre-configured :class:`DepMiner`; every keyword
        option is forwarded to a fresh one otherwise.
    """

    def __init__(self, relation, miner: Optional[DepMiner] = None,
                 **miner_options: Any):
        if miner is not None and miner_options:
            raise ReproError(
                "pass either a pre-built miner or DepMiner options, not both"
            )
        self.miner = miner if miner is not None else DepMiner(**miner_options)
        from repro.cache.fingerprint import RelationFingerprint

        coded = None if isinstance(relation, Relation) else relation
        source = relation  # what the cold mine runs on (coded stays coded)
        if coded is not None:
            relation = coded.to_relation()
        self._schema = relation.schema
        self._width = len(self._schema)
        self._columns: List[List[Any]] = [
            list(relation.column(i)) for i in range(self._width)
        ]
        self._num_rows = len(relation)
        # The in-place partition state: one value → sorted row list per
        # attribute.  Under SQL null semantics ``None`` never joins a
        # class, so null rows are simply not grouped.
        self._groups: List[Dict[Any, List[int]]] = [
            {} for _ in range(self._width)
        ]
        for attribute, column in enumerate(self._columns):
            groups = self._groups[attribute]
            for row, value in enumerate(column):
                if value is None and not self.miner.nulls_equal:
                    continue
                groups.setdefault(value, []).append(row)
        self._fingerprint = RelationFingerprint(
            self._schema, self.miner.nulls_equal
        )
        self._fingerprint.update_columns(self._columns)
        # append() mutates the value -> rows maps, the columns and the
        # fingerprint across many non-atomic steps; the mutex serializes
        # overlapping appends (concurrent service sessions) and the
        # owner check turns a re-entrant call — which would deadlock on
        # the non-reentrant lock — into a typed error.
        self._append_lock = threading.Lock()
        self._append_owner: Optional[int] = None
        self._init_codes(coded)
        self._result = self.miner.run(source)
        self._agree: Set[int] = set(self._result.agree_sets)
        self._stats: Dict[str, int] = dict(self._result.stats)

    # -- introspection -------------------------------------------------------

    @property
    def result(self) -> DepMinerResult:
        """The result of the most recent mine (initial or last append)."""
        return self._result

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def relation_key(self) -> str:
        """The content fingerprint of the current (grown) relation."""
        return self._fingerprint.key

    def relation(self) -> Relation:
        """The current relation (initial rows plus every appended batch)."""
        return Relation.from_columns(self._schema, self._columns)

    # -- the delta path ------------------------------------------------------

    def append(self, rows: Sequence[Sequence[Any]]) -> DepMinerResult:
        """Append *rows* and re-mine; returns the updated result.

        Equivalent to ``DepMiner.run`` on the concatenated relation, but
        only the delta couples are swept and only the derivation tail is
        recomputed.

        Thread-safe: overlapping calls from different threads are
        serialized on a per-instance mutex (each sees the state the
        previous append left, exactly as if the batches had arrived in
        that order).  A *re-entrant* call — ``append`` invoked from
        within an append on the same thread, e.g. from a progress
        callback — raises :class:`~repro.errors.CacheError` instead of
        deadlocking.
        """
        if self._append_owner == threading.get_ident():
            raise CacheError(
                "re-entrant IncrementalMiner.append: append() was called "
                "from within an append on the same thread (e.g. from a "
                "progress or metrics callback); queue the rows and append "
                "them after the current call returns"
            )
        with self._append_lock:
            self._append_owner = threading.get_ident()
            try:
                return self._append_locked(rows)
            finally:
                self._append_owner = None

    def _append_locked(self, rows: Sequence[Sequence[Any]]) -> DepMinerResult:
        rows = [tuple(row) for row in rows]
        for row in rows:
            if len(row) != self._width:
                raise ReproError(
                    f"appended row has arity {len(row)}, "
                    f"schema has {self._width}"
                )
        if not rows:
            return self._result

        miner = self.miner
        metrics = miner.metrics if miner.metrics is not None else NULL_METRICS
        tracer = miner.tracer if miner.tracer is not None else Tracer()
        n_old = self._num_rows
        n_new = len(rows)

        with tracer.span("incremental.append", new_rows=n_new,
                         total_rows=n_old + n_new):
            touched = self._absorb(rows)
            spdb = self._current_spdb()
            with tracer.span("incremental.delta_sweep") as sweep_span:
                delta_couples = self._delta_couples(touched, n_old)
                delta_masks = self._resolve_delta(
                    sorted(delta_couples), spdb, tracer, metrics
                )
            # Every possible delta pair holds >= 1 new row; one that was
            # never visited shares no equivalence class, i.e. disagrees
            # on every attribute (the cold algorithms' ∅ test, restricted
            # to the delta).  ∅ membership is monotone under appends, so
            # the merge below can only ever add it.
            total_delta = n_new * n_old + n_new * (n_new - 1) // 2
            if len(delta_couples) < total_delta:
                delta_masks.add(0)
            metrics.inc("incremental.delta_couples", len(delta_couples))
            metrics.inc("incremental.rows_appended", n_new)
            logger.debug(
                "append of %d rows onto %d: %d delta couples "
                "(of %d possible) -> %d delta masks (%.3fs)",
                n_new, n_old, len(delta_couples), total_delta,
                len(delta_masks), sweep_span.duration,
            )

            self._agree |= delta_masks
            self._stats["num_couples"] = (
                self._stats.get("num_couples", 0) + len(delta_couples)
            )
            self._stats["num_agree_sets"] = len(self._agree)
            relation = self.relation()
            relation_key = self._fingerprint.key
            if miner.cache is not None:
                self._publish_partitions(relation_key, spdb, metrics)
        self._result = miner.derive_from_agree_sets(
            self._agree, self._schema, self._num_rows,
            relation=relation, stats=self._stats,
            relation_key=relation_key,
        )
        return self._result

    # -- internals -----------------------------------------------------------

    def _init_codes(self, coded) -> None:
        """Seed the columnar delta state (encoders + code matrix).

        Only for a columnar-backend miner with NumPy present; the
        pure-Python delta path keeps ``_code_chunks`` at ``None``.  A
        matching :class:`CodedRelation` donates its factorization
        verbatim; otherwise the columns are encoded once here.
        """
        self._code_chunks = None
        if self.miner.backend != "columnar":
            return
        from repro.columnar import numpy_available

        if not numpy_available():
            return
        import numpy as np

        nulls_equal = self.miner.nulls_equal
        if coded is not None and coded.nulls_equal == nulls_equal:
            codes = np.asarray(coded.codes, dtype=np.int64)
            uniques = [coded.uniques(a) for a in range(self._width)]
        else:
            from repro.columnar.encode import encode_column

            per_column = [
                encode_column(column, nulls_equal=nulls_equal)
                for column in self._columns
            ]
            codes = (
                np.vstack([c for c, _ in per_column])
                if per_column
                else np.empty((0, self._num_rows), dtype=np.int64)
            )
            uniques = [list(u) for _, u in per_column]
        self._encoders: List[Dict[Any, int]] = []
        self._next_code: List[int] = []
        for values in uniques:
            encoder: Dict[Any, int] = {}
            for code, value in enumerate(values):
                if value is None and not nulls_equal:
                    continue  # SQL nulls: every null cell keeps a fresh code
                encoder.setdefault(value, code)
            self._encoders.append(encoder)
            self._next_code.append(len(values))
        self._code_chunks = [codes]

    def _absorb_codes(self, rows: List[Tuple[Any, ...]]) -> None:
        """Encode *rows* through the persistent per-attribute encoders
        and append the resulting ``(width, new)`` code-matrix slice."""
        if self._code_chunks is None:
            return
        import numpy as np

        nulls_equal = self.miner.nulls_equal
        chunk = np.empty((self._width, len(rows)), dtype=np.int64)
        for offset, row in enumerate(rows):
            for attribute, value in enumerate(row):
                if value is None and not nulls_equal:
                    code = self._next_code[attribute]
                    self._next_code[attribute] += 1
                else:
                    encoder = self._encoders[attribute]
                    code = encoder.get(value)
                    if code is None:
                        code = self._next_code[attribute]
                        encoder[value] = code
                        self._next_code[attribute] += 1
                chunk[attribute, offset] = code
        self._code_chunks.append(chunk)

    def _codes(self):
        """The grown code matrix; chunks consolidate on first use."""
        import numpy as np

        if len(self._code_chunks) > 1:
            self._code_chunks = [
                np.concatenate(self._code_chunks, axis=1)
            ]
        return self._code_chunks[0]

    def _absorb(self, rows: List[Tuple[Any, ...]]) -> List[Set[Any]]:
        """Fold *rows* into the columns, groups and fingerprint.

        Returns, per attribute, the set of group values the new rows
        joined — the only places delta couples can come from.  Group
        row lists stay sorted because appended indices only grow.
        """
        nulls_equal = self.miner.nulls_equal
        touched: List[Set[Any]] = [set() for _ in range(self._width)]
        base = self._num_rows
        for offset, row in enumerate(rows):
            row_index = base + offset
            for attribute, value in enumerate(row):
                self._columns[attribute].append(value)
                if value is None and not nulls_equal:
                    continue
                self._groups[attribute].setdefault(value, []).append(row_index)
                touched[attribute].add(value)
        self._num_rows = base + len(rows)
        self._fingerprint.update_rows(rows)
        self._absorb_codes(rows)
        return touched

    def _delta_couples(self, touched: List[Set[Any]],
                       first_new: int) -> Set[Tuple[int, int]]:
        """Candidate couples holding >= 1 new row, each exactly once.

        Only groups a new row joined can produce them; within such a
        group every (old member, new member) and (new, new) pair is
        enumerated — O(new × group) per attribute, O(new × total)
        overall.  Couples shared by several attributes dedupe through
        the set, mirroring the cold stream's dedup-before-resolve
        contract (which is what keeps the distinct count, and thus the
        ``∅`` detection, sound).
        """
        couples: Set[Tuple[int, int]] = set()
        for attribute, values in enumerate(touched):
            groups = self._groups[attribute]
            for value in values:
                members = groups[value]
                if len(members) < 2:
                    continue
                split = bisect_left(members, first_new)
                old_part = members[:split]
                new_part = members[split:]
                for fresh in new_part:
                    for old in old_part:
                        couples.add((old, fresh))
                couples.update(combinations(new_part, 2))
        return couples

    def _current_spdb(self) -> StrippedPartitionDatabase:
        """``r̂`` of the grown relation, straight from the group maps."""
        partitions = {
            attribute: StrippedPartition(
                [
                    members for members in groups.values()
                    if len(members) > 1
                ],
                self._num_rows,
            )
            for attribute, groups in enumerate(self._groups)
        }
        return StrippedPartitionDatabase(
            self._schema, partitions, self._num_rows
        )

    def _resolve_delta(self, couples: List[Tuple[int, int]],
                       spdb: StrippedPartitionDatabase, tracer: Tracer,
                       metrics: MetricsRegistry) -> Set[int]:
        """Agree-set masks of the delta couples (serial or sharded).

        Reuses the exact resolution functions (and, with ``jobs > 1``,
        the exact shard kinds) of the cold pipeline, so the delta path
        inherits its determinism guarantees.
        """
        if not couples:
            return set()
        miner = self.miner
        if self._code_chunks is not None:
            # Columnar backend: the delta resolves against the grown
            # code matrix with the vectorized couple resolution (range
            # shards under jobs > 1), same masks as the Python paths.
            import numpy as np

            from repro.columnar.agree import resolve_couples
            from repro.columnar.grouping import class_matrix

            ec = class_matrix(self._codes())
            pairs = np.asarray(couples, dtype=np.int64)
            left, right = pairs[:, 0], pairs[:, 1]
            executor = miner._make_executor(tracer, metrics)
            if executor is not None:
                from repro.parallel.shards import parallel_columnar_couples

                return parallel_columnar_couples(ec, left, right, executor)
            return resolve_couples(ec, left, right)
        if miner.agree_algorithm == "identifiers":
            kind = "agree.identifiers"
            shared: Dict[str, Any] = {
                "identifiers": spdb.equivalence_class_identifiers()
            }
            resolve = resolve_couples_with_identifiers
        else:
            # "couples" — and "vectorized", whose NumPy path has no
            # per-couple API; the tables resolve the delta identically.
            kind = "agree.couples"
            shared = {"class_of": build_class_index_tables(spdb)}
            resolve = resolve_couples_with_tables
        executor = miner._make_executor(tracer, metrics)
        if executor is None:
            return resolve(couples, next(iter(shared.values())))

        from repro.parallel.shards import _chunk_size

        size = _chunk_size(len(couples), executor.jobs, miner.max_couples)
        chunks = [
            tuple(couples[offset:offset + size])
            for offset in range(0, len(couples), size)
        ]
        result: Set[int] = set()
        for partial in executor.map(kind, chunks, shared=shared,
                                    stage="incremental.delta_shards"):
            result |= partial
        return result

    def _publish_partitions(self, relation_key: str,
                            spdb: StrippedPartitionDatabase,
                            metrics: MetricsRegistry) -> None:
        """Store the updated ``r̂`` under the grown relation's key."""
        from repro.cache.artifacts import pack_partitions
        from repro.cache.codec import guard_digest
        from repro.cache.fingerprint import PipelineKeys

        keys = PipelineKeys.for_miner(relation_key, self.miner)
        self.miner.cache.put(
            "partitions", keys.partitions,
            guard_digest(self._schema.names, self._num_rows),
            pack_partitions(spdb), metrics=metrics,
        )

    def __repr__(self) -> str:
        return (
            f"IncrementalMiner(width={self._width}, rows={self._num_rows}, "
            f"agree_sets={len(self._agree)})"
        )
