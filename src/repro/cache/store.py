"""The two-tier content-addressed artifact store.

``ArtifactStore`` memoizes pipeline artefacts under the stage keys of
:mod:`repro.cache.fingerprint`:

- an **in-memory LRU tier** holding the decoded payloads of the most
  recently used artefacts (cheap hits within one process — the warm
  re-mine path);
- an optional **on-disk tier** (``cache_dir``) persisting every artefact
  through the framed binary codec of :mod:`repro.cache.codec`, so warm
  hits survive process restarts and can be shared between workers.

Lookups are *corruption-safe*: a disk entry that fails to decode —
truncated file, bad checksum, foreign format version, kind or guard
mismatch — is deleted and reported as a miss, and the pipeline simply
recomputes the artefact.  Every lookup passes the caller's 16-byte
*guard* digest (schema + row count, :func:`repro.cache.codec.guard_digest`),
which both tiers verify before returning a payload: a fingerprint
collision between relations of different shape is rejected instead of
served.

The disk tier is additionally *quarantine-guarded*: real IO errors
(permission loss, a full or failing disk — anything ``OSError`` except
the ordinary missing-entry miss) are counted as ``cache.io_error``, and
after ``max_disk_failures`` of them the tier is disabled for the rest
of the session (``cache.quarantined``).  The store then behaves exactly
like a memory-only store — a sick disk degrades the cache, never the
miner.  The fault sites ``cache.disk_read`` / ``cache.disk_write``
(:mod:`repro.reliability.faults`) inject precisely these errors, plus
torn reads via byte truncation, so the quarantine and the atomic-write
crash window stay exercised by tests.

The store is *thread-safe*: one process-wide instance can serve any
number of concurrent sessions (the shape of ``repro serve``).  A single
:class:`threading.RLock` guards the memory-tier ``OrderedDict`` (whose
``get``/``move_to_end``/``popitem`` sequences are not atomic on their
own), the ``stats`` counters, and the IO-failure/quarantine state; disk
reads and writes deliberately run *outside* the lock (they are
per-entry atomic via ``os.replace`` and the decode-time guard check),
so a slow disk never serializes memory-tier hits.

The store only holds plain codec-representable payloads (ints, strings,
containers); the pack/unpack helpers of :mod:`repro.cache.artifacts`
translate between those and the pipeline's object types, building fresh
containers on every unpack so cached payloads are never aliased by
callers.

Observability: the store keeps lifetime totals in :attr:`stats` and
mirrors each event into the per-call :class:`~repro.obs.MetricsRegistry`
(counters ``cache.hit`` / ``cache.miss`` / ``cache.evict`` /
``cache.memory_hit`` / ``cache.disk_hit`` / ``cache.disk_corrupt`` /
``cache.guard_reject`` / ``cache.put``), so a traced run shows exactly
which artefacts were reused.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.cache.codec import decode_artifact, encode_artifact
from repro.errors import CacheCodecError, CacheError
from repro.obs import NULL_METRICS, MetricsRegistry, get_logger
from repro.reliability.faults import fault_point, filter_bytes

__all__ = ["ArtifactStore", "DEFAULT_MEMORY_ENTRIES", "DEFAULT_DISK_FAILURES"]

logger = get_logger(__name__)

#: Default capacity of the in-memory LRU tier (artefact count, not bytes:
#: entries are a handful of mask lists, small next to the relation).
DEFAULT_MEMORY_ENTRIES = 64

#: Disk-tier IO errors tolerated before the tier is quarantined for the
#: session.  Small on purpose: one full disk produces an error per
#: artefact write, and three strikes is enough signal.
DEFAULT_DISK_FAILURES = 3

_COUNTER_NAMES = (
    "cache.hit", "cache.miss", "cache.evict", "cache.memory_hit",
    "cache.disk_hit", "cache.disk_corrupt", "cache.guard_reject",
    "cache.put", "cache.io_error", "cache.quarantined",
)


class ArtifactStore:
    """Two-tier (memory LRU + optional disk) content-addressed store.

    Parameters
    ----------
    cache_dir:
        Directory of the persistent tier; ``None`` keeps the store
        memory-only.  Created on first write if missing.
    max_memory_entries:
        LRU capacity of the in-memory tier; ``0`` disables it (every
        hit then decodes from disk).
    max_disk_failures:
        Disk IO errors (reads or writes, excluding ordinary missing-file
        misses) tolerated before the disk tier is quarantined for the
        rest of the session.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None,
                 max_memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 max_disk_failures: int = DEFAULT_DISK_FAILURES):
        if max_memory_entries < 0:
            raise CacheError("max_memory_entries must be non-negative")
        if max_disk_failures < 1:
            raise CacheError("max_disk_failures must be at least 1")
        self._dir = Path(cache_dir) if cache_dir is not None else None
        self._max_memory = max_memory_entries
        self._max_disk_failures = max_disk_failures
        self._io_failures = 0
        self._quarantined = False
        self._memory: "OrderedDict[Tuple[str, str], Tuple[bytes, Any]]" = \
            OrderedDict()
        self.stats: Dict[str, int] = {name: 0 for name in _COUNTER_NAMES}
        # One reentrant lock for every shared mutable: the LRU dict, the
        # stats counters and the quarantine state.  Reentrant because
        # locked sections count events (_count) and log evictions.
        self._lock = threading.RLock()

    # -- helpers -------------------------------------------------------------

    def _count(self, name: str, metrics: MetricsRegistry) -> None:
        with self._lock:
            self.stats[name] += 1
        metrics.inc(name)

    def _note_io_failure(self, operation: str, error: BaseException,
                         metrics: MetricsRegistry) -> None:
        """Count a real disk IO error; quarantine the tier at threshold."""
        with self._lock:
            self._io_failures += 1
            failures = self._io_failures
            quarantine_now = (not self._quarantined
                              and failures >= self._max_disk_failures)
            if quarantine_now:
                self._quarantined = True
        self._count("cache.io_error", metrics)
        logger.warning(
            "cache disk %s failed (%d/%d before quarantine): %s",
            operation, failures, self._max_disk_failures, error,
        )
        if quarantine_now:
            self._count("cache.quarantined", metrics)
            logger.error(
                "cache disk tier quarantined after %d IO errors; "
                "continuing memory-only for this session (%s)",
                failures, self._dir,
            )

    def _path(self, kind: str, key: str) -> Path:
        # kind and key are both [a-z0-9.-]; flat layout keeps eviction
        # and inspection trivial (`ls cache_dir`).
        return self._dir / f"{kind}-{key}.rpc"

    # -- lookups -------------------------------------------------------------

    def get(self, kind: str, key: str, guard: bytes,
            metrics: MetricsRegistry = NULL_METRICS) -> Optional[Any]:
        """The payload stored under ``(kind, key)``, or ``None``.

        *guard* must match the digest recorded at :meth:`put` time; a
        mismatch counts as ``cache.guard_reject`` and misses.  Disk
        entries that fail to decode are deleted and miss
        (``cache.disk_corrupt``).
        """
        with self._lock:
            entry = self._memory.get((kind, key))
            if entry is not None:
                stored_guard, payload = entry
                if stored_guard != guard:
                    self._count("cache.guard_reject", metrics)
                    self._count("cache.miss", metrics)
                    return None
                # The lookup and the LRU promotion must be one atomic
                # step: a concurrent put() may evict this very entry
                # between them, and move_to_end would raise KeyError.
                self._memory.move_to_end((kind, key))
                self._count("cache.memory_hit", metrics)
                self._count("cache.hit", metrics)
                return payload

        if self.disk_enabled:
            payload = self._load_disk(kind, key, guard, metrics)
            if payload is not None:
                self._remember(kind, key, guard, payload, metrics)
                self._count("cache.disk_hit", metrics)
                self._count("cache.hit", metrics)
                return payload

        self._count("cache.miss", metrics)
        return None

    def _load_disk(self, kind: str, key: str, guard: bytes,
                   metrics: MetricsRegistry) -> Optional[Any]:
        path = self._path(kind, key)
        try:
            fault_point("cache.disk_read", metrics=metrics,
                        kind=kind, key=key)
            data = path.read_bytes()
        except FileNotFoundError:
            return None  # ordinary miss, not an IO failure
        except OSError as error:
            self._note_io_failure("read", error, metrics)
            return None
        data = filter_bytes("cache.disk_read", data, metrics=metrics,
                            kind=kind, key=key)
        try:
            return decode_artifact(data, kind, guard)
        except CacheCodecError as error:
            if "guard mismatch" in str(error):
                self._count("cache.guard_reject", metrics)
            else:
                self._count("cache.disk_corrupt", metrics)
            logger.warning(
                "dropping unusable cache entry %s: %s", path.name, error
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # -- writes --------------------------------------------------------------

    def put(self, kind: str, key: str, guard: bytes, payload: Any,
            metrics: MetricsRegistry = NULL_METRICS) -> None:
        """Store *payload* under ``(kind, key)`` in both tiers.

        The payload must be codec-representable (the pack helpers of
        :mod:`repro.cache.artifacts` guarantee this); disk write
        failures are counted (and eventually quarantine the tier), never
        raised.
        """
        encoded: Optional[bytes] = None
        if self.disk_enabled:
            try:
                encoded = encode_artifact(kind, guard, payload)
            except CacheCodecError:
                raise
            try:
                self._dir.mkdir(parents=True, exist_ok=True)
                # Atomic publish: no reader ever sees a half-written file.
                fd, temp_name = tempfile.mkstemp(
                    dir=str(self._dir), prefix=f".{kind}-", suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(encoded)
                    # Crash window: the entry exists only as a temp file
                    # here; an injected fault proves a crash between
                    # write and publish leaves no partial entry behind.
                    fault_point("cache.disk_write", metrics=metrics,
                                kind=kind, key=key)
                    os.replace(temp_name, self._path(kind, key))
                except BaseException:
                    try:
                        os.unlink(temp_name)
                    except OSError:
                        pass
                    raise
            except OSError as error:
                self._note_io_failure("write", error, metrics)
        elif self._max_memory:
            # Memory-only stores still validate representability eagerly,
            # so misconfigured payloads fail at put time, not on a later
            # disk-tier upgrade.
            encode_artifact(kind, guard, payload)
        self._remember(kind, key, guard, payload, metrics)
        self._count("cache.put", metrics)

    def _remember(self, kind: str, key: str, guard: bytes, payload: Any,
                  metrics: MetricsRegistry) -> None:
        if not self._max_memory:
            return
        with self._lock:
            self._memory[(kind, key)] = (guard, payload)
            self._memory.move_to_end((kind, key))
            while len(self._memory) > self._max_memory:
                evicted_key, _ = self._memory.popitem(last=False)
                self._count("cache.evict", metrics)
                logger.debug(
                    "evicted %s-%s from the memory tier", *evicted_key
                )

    # -- maintenance ---------------------------------------------------------

    def invalidate(self, kind: str, key: str) -> None:
        """Drop one entry from both tiers (missing entries are fine)."""
        with self._lock:
            self._memory.pop((kind, key), None)
        if self._dir is not None:
            try:
                self._path(kind, key).unlink()
            except OSError:
                pass

    def clear(self) -> None:
        """Empty the memory tier and delete every disk entry."""
        with self._lock:
            self._memory.clear()
        if self._dir is not None and self._dir.is_dir():
            for path in self._dir.glob("*.rpc"):
                try:
                    path.unlink()
                except OSError:
                    pass

    @property
    def cache_dir(self) -> Optional[Path]:
        return self._dir

    @property
    def disk_enabled(self) -> bool:
        """Whether the disk tier is configured and not quarantined."""
        return self._dir is not None and not self._quarantined

    @property
    def quarantined(self) -> bool:
        """Whether the disk tier was disabled after repeated IO errors."""
        return self._quarantined

    def __len__(self) -> int:
        """Entries currently held in the memory tier."""
        with self._lock:
            return len(self._memory)

    def __repr__(self) -> str:
        if self._dir is None:
            tier = "memory-only"
        elif self._quarantined:
            tier = f"{self._dir} [quarantined]"
        else:
            tier = str(self._dir)
        return (
            f"ArtifactStore({tier}, memory={len(self._memory)}/"
            f"{self._max_memory}, hits={self.stats['cache.hit']}, "
            f"misses={self.stats['cache.miss']})"
        )
