"""Content-addressed artifact cache and incremental re-mining.

The cache layer makes repeated and growing workloads cheap:

- :mod:`repro.cache.fingerprint` — row-order-insensitive relation
  fingerprints and per-stage content keys;
- :mod:`repro.cache.store` — the two-tier (memory LRU + disk)
  :class:`ArtifactStore` holding stripped partitions, ``ag(r)`` and FD
  cover bundles;
- :mod:`repro.cache.codec` — the compact versioned binary format of the
  disk tier (corruption-safe: bad entries decode to cache misses);
- :mod:`repro.cache.incremental` — :class:`IncrementalMiner`, the
  append-only delta path that re-mines only the new couples.

Entry points: ``DepMiner(cache=ArtifactStore(...))`` for transparent
memoization, ``IncrementalMiner(relation, cache=...)`` for append
workloads, ``repro discover --cache-dir/--append`` on the CLI.  Design
and invalidation rules: ``docs/caching.md``.
"""

from repro.cache.codec import guard_digest
from repro.cache.fingerprint import (
    PipelineKeys,
    RelationFingerprint,
    fingerprint_relation,
    stage_key,
)
from repro.cache.incremental import IncrementalMiner
from repro.cache.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "IncrementalMiner",
    "PipelineKeys",
    "RelationFingerprint",
    "fingerprint_relation",
    "guard_digest",
    "stage_key",
]
