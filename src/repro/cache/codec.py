"""Compact, versioned binary serialization of pipeline artefacts.

The on-disk tier of :class:`repro.cache.store.ArtifactStore` persists
bitmask families and stripped partitions.  ``pickle`` would work but is
neither compact nor safe to load from an untrusted cache directory, so
artefacts are encoded with a tiny deterministic tagged format:

- unsigned integers are LEB128 varints (bitmasks and row indices are
  small non-negative ints, so a typical agree-set mask costs 1–3 bytes);
- containers are length-prefixed; sets are sorted before encoding and
  dict items are emitted in sorted-key order, so equal artefacts always
  produce identical bytes (content-addressing friendly);
- every file starts with an 8-byte magic and a format version, carries
  the artefact kind and a 16-byte *guard* digest (schema + row count —
  the fingerprint-collision safety net), and ends with a 16-byte
  blake2b checksum of the payload.

Any mismatch — bad magic, unknown version, truncated payload, checksum
failure, wrong kind, wrong guard — raises :class:`CacheCodecError`,
which the store converts into a cache miss followed by recomputation
("corruption-safe load-or-recompute").
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Dict, List, Tuple

from repro.errors import CacheCodecError

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "encode_value",
    "decode_value",
    "encode_artifact",
    "decode_artifact",
    "guard_digest",
]

MAGIC = b"RPROCACH"
FORMAT_VERSION = 1

_CHECKSUM_SIZE = 16


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise CacheCodecError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CacheCodecError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def _sort_key(item: Any) -> Tuple[str, str]:
    # A total order over the mixed key types dicts/sets may hold.
    return (type(item).__name__, repr(item))


def encode_value(value: Any) -> bytes:
    """Encode one artefact value (ints, strings, containers) to bytes."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(ord("N"))
    elif value is True:
        out.append(ord("T"))
    elif value is False:
        out.append(ord("F"))
    elif isinstance(value, int):
        if value >= 0:
            out.append(ord("i"))
            _write_varint(out, value)
        else:
            out.append(ord("I"))
            _write_varint(out, -value)
    elif isinstance(value, float):
        out.append(ord("f"))
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        encoded = value.encode("utf-8", "surrogatepass")
        out.append(ord("s"))
        _write_varint(out, len(encoded))
        out += encoded
    elif isinstance(value, bytes):
        out.append(ord("b"))
        _write_varint(out, len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out.append(ord("l") if isinstance(value, list) else ord("t"))
        _write_varint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, (set, frozenset)):
        out.append(ord("e"))
        _write_varint(out, len(value))
        for item in sorted(value, key=_sort_key):
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.append(ord("d"))
        _write_varint(out, len(value))
        for key in sorted(value, key=_sort_key):
            _encode_into(out, key)
            _encode_into(out, value[key])
    else:
        raise CacheCodecError(
            f"cannot serialize {type(value).__name__} into a cache artefact"
        )


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`; rejects trailing bytes."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise CacheCodecError(
            f"{len(data) - offset} trailing byte(s) after artefact payload"
        )
    return value


def _decode_from(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise CacheCodecError("truncated artefact payload")
    tag = data[offset]
    offset += 1
    if tag == ord("N"):
        return None, offset
    if tag == ord("T"):
        return True, offset
    if tag == ord("F"):
        return False, offset
    if tag == ord("i"):
        return _read_varint(data, offset)
    if tag == ord("I"):
        value, offset = _read_varint(data, offset)
        return -value, offset
    if tag == ord("f"):
        if offset + 8 > len(data):
            raise CacheCodecError("truncated float")
        return struct.unpack(">d", data[offset:offset + 8])[0], offset + 8
    if tag in (ord("s"), ord("b")):
        length, offset = _read_varint(data, offset)
        if offset + length > len(data):
            raise CacheCodecError("truncated string payload")
        raw = data[offset:offset + length]
        offset += length
        if tag == ord("s"):
            return raw.decode("utf-8", "surrogatepass"), offset
        return raw, offset
    if tag in (ord("l"), ord("t")):
        count, offset = _read_varint(data, offset)
        items: List[Any] = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return (items if tag == ord("l") else tuple(items)), offset
    if tag == ord("e"):
        count, offset = _read_varint(data, offset)
        members = set()
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            members.add(item)
        return members, offset
    if tag == ord("d"):
        count, offset = _read_varint(data, offset)
        mapping: Dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            item, offset = _decode_from(data, offset)
            mapping[key] = item
        return mapping, offset
    raise CacheCodecError(f"unknown artefact tag 0x{tag:02x}")


def guard_digest(schema_names: Tuple[str, ...], num_rows: int) -> bytes:
    """The 16-byte collision guard: schema identity + row count.

    Stored inside every entry (both tiers) and re-checked on every
    lookup, so a fingerprint collision between two relations of
    different shape can never surface a foreign artefact.  Same-shape
    collisions are left to the 128-bit content hash (~2⁻⁶⁴ birthday
    risk at astronomically more relations than any deployment mines).
    """
    payload = ("\x1f".join(schema_names) + f"|{num_rows}").encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).digest()


def encode_artifact(kind: str, guard: bytes, value: Any) -> bytes:
    """Serialize one artefact into the framed on-disk representation."""
    if len(guard) != 16:
        raise CacheCodecError("guard digest must be 16 bytes")
    payload = encode_value(value)
    kind_bytes = kind.encode("utf-8")
    out = bytearray()
    out += MAGIC
    out += struct.pack(">H", FORMAT_VERSION)
    _write_varint(out, len(kind_bytes))
    out += kind_bytes
    out += guard
    _write_varint(out, len(payload))
    out += payload
    out += hashlib.blake2b(payload, digest_size=_CHECKSUM_SIZE).digest()
    return bytes(out)


def decode_artifact(data: bytes, kind: str, guard: bytes) -> Any:
    """Decode a framed artefact, verifying magic, version, kind, guard
    and checksum.  Raises :class:`CacheCodecError` on any mismatch."""
    if data[:len(MAGIC)] != MAGIC:
        raise CacheCodecError("bad magic (not a repro cache artefact)")
    offset = len(MAGIC)
    if offset + 2 > len(data):
        raise CacheCodecError("truncated header")
    (version,) = struct.unpack(">H", data[offset:offset + 2])
    offset += 2
    if version != FORMAT_VERSION:
        raise CacheCodecError(
            f"unsupported cache format version {version} "
            f"(this build writes {FORMAT_VERSION})"
        )
    kind_length, offset = _read_varint(data, offset)
    if offset + kind_length > len(data):
        raise CacheCodecError("truncated kind")
    stored_kind = data[offset:offset + kind_length].decode("utf-8")
    offset += kind_length
    if stored_kind != kind:
        raise CacheCodecError(
            f"artefact kind mismatch: stored {stored_kind!r}, "
            f"expected {kind!r}"
        )
    if offset + 16 > len(data):
        raise CacheCodecError("truncated guard")
    stored_guard = data[offset:offset + 16]
    offset += 16
    if stored_guard != guard:
        raise CacheCodecError(
            "guard mismatch: the cached artefact belongs to a relation of "
            "a different shape (fingerprint collision averted)"
        )
    payload_length, offset = _read_varint(data, offset)
    if offset + payload_length + _CHECKSUM_SIZE > len(data):
        raise CacheCodecError("truncated payload")
    payload = data[offset:offset + payload_length]
    offset += payload_length
    checksum = data[offset:offset + _CHECKSUM_SIZE]
    if hashlib.blake2b(payload, digest_size=_CHECKSUM_SIZE).digest() != checksum:
        raise CacheCodecError("payload checksum mismatch (corrupted entry)")
    return decode_value(payload)
