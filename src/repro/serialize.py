"""JSON (de)serialization of schemas, FDs and mining results.

Lets profiling runs be persisted and diffed: a nightly job can mine a
table, store the JSON document, and a later run can load it and compare
covers (``repro.fd.equivalent_covers``) to detect dependency drift.

The document format is versioned and intentionally plain: attribute
*names*, not bitmasks, so files remain meaningful if the schema gains
columns (masks would silently shift).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Union

from repro.core.attributes import AttributeSet, Schema
from repro.core.depminer import DepMinerResult
from repro.errors import ReproError
from repro.fd.fd import FD

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "fd_to_dict",
    "fd_from_dict",
    "fds_to_json",
    "fds_from_json",
    "result_to_dict",
    "result_to_json",
]

FORMAT_VERSION = 1


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    return {"attributes": list(schema.names)}


def schema_from_dict(data: Dict[str, Any]) -> Schema:
    try:
        return Schema(data["attributes"])
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed schema document: {exc}") from None


def fd_to_dict(fd: FD) -> Dict[str, Any]:
    return {"lhs": list(fd.lhs.names), "rhs": fd.rhs}


def fd_from_dict(data: Dict[str, Any], schema: Schema) -> FD:
    try:
        lhs = schema.attribute_set(data["lhs"])
        return FD(lhs, data["rhs"])
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed FD document: {exc}") from None


def fds_to_json(fds: Sequence[FD], indent: int = 2) -> str:
    """Serialize an FD list (with its schema) to a JSON document."""
    if not fds:
        raise ReproError(
            "cannot infer a schema from an empty FD list; use "
            "result_to_json for full results"
        )
    schema = fds[0].schema
    document = {
        "version": FORMAT_VERSION,
        "schema": schema_to_dict(schema),
        "fds": [fd_to_dict(fd) for fd in fds],
    }
    return json.dumps(document, indent=indent)


def fds_from_json(text: str) -> List[FD]:
    """Load an FD list written by :func:`fds_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid JSON: {exc}") from None
    if document.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported document version {document.get('version')!r}"
        )
    schema = schema_from_dict(document.get("schema", {}))
    return [fd_from_dict(item, schema) for item in document.get("fds", [])]


def _masks_to_names(schema: Schema, masks: Sequence[int]) -> List[List[str]]:
    return [list(AttributeSet(schema, mask).names) for mask in masks]


def result_to_dict(result: DepMinerResult) -> Dict[str, Any]:
    """Full mining result as a JSON-ready dict (FDs, max sets, sizes)."""
    schema = result.schema
    return {
        "version": FORMAT_VERSION,
        "schema": schema_to_dict(schema),
        "num_rows": result.num_rows,
        "fds": [fd_to_dict(fd) for fd in result.fds],
        "agree_sets": _masks_to_names(schema, sorted(result.agree_sets)),
        "max_sets": {
            schema.name_of(attribute): _masks_to_names(schema, masks)
            for attribute, masks in result.max_sets.items()
        },
        "max_union": _masks_to_names(schema, result.max_union),
        "armstrong_size": result.armstrong_size,
        "phase_seconds": dict(result.phase_seconds),
    }


def result_to_json(result: DepMinerResult, indent: int = 2) -> str:
    return json.dumps(result_to_dict(result), indent=indent)
