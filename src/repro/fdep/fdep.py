"""FDEP [Savnik & Flach 1993] — bottom-up induction of FDs.

The second related miner the paper cites (besides TANE): FDEP first
builds the *negative cover* — the maximal "non-dependencies" witnessed
by tuple pairs, which in this codebase are exactly the maximal sets
derived from agree sets — then *specializes* the trivial hypothesis
``∅ → A`` against every negative witness: an lhs contained in a witness
cannot determine ``A``, so it is replaced by its one-attribute
extensions that escape the witness, keeping the set minimal throughout.

The result provably equals ``lhs(dep(r), A)`` (it computes the same
minimal transversals, by incremental specialization rather than
levelwise search or DFS), which the tests assert against Dep-Miner and
the brute force.  It is included as a faithfully different *algorithm*,
not a re-skin: its working set is the evolving hypothesis antichain, and
its costs concentrate on the minimization after each specialization.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.core.agree_sets import agree_sets_from_identifiers
from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.core.maximal_sets import maximal_sets
from repro.core.relation import Relation
from repro.fd.fd import FD, sort_fds
from repro.hypergraph.hypergraph import minimize_sets
from repro.partitions.database import StrippedPartitionDatabase

__all__ = ["Fdep", "FdepResult", "specialize_hypotheses"]


def specialize_hypotheses(witness_mask: int, hypotheses: List[int],
                          universe: int, rhs_bit: int) -> List[int]:
    """One FDEP specialization step.

    Every hypothesis lhs contained in *witness_mask* is refuted (the
    witness pair agrees on it but not on the rhs) and is replaced by its
    extensions with one attribute outside ``witness ∪ {rhs}``.  The
    surviving family is re-minimized so it stays an antichain.
    """
    survivors: List[int] = []
    refuted: List[int] = []
    for lhs in hypotheses:
        if lhs & ~witness_mask:
            survivors.append(lhs)
        else:
            refuted.append(lhs)
    if not refuted:
        return hypotheses
    escape_bits = universe & ~witness_mask & ~rhs_bit
    extensions: Set[int] = set()
    for lhs in refuted:
        for bit_index in iter_bits(escape_bits):
            extensions.add(lhs | (1 << bit_index))
    # Keep only extensions not already covered by a surviving hypothesis.
    candidates = survivors + [
        ext
        for ext in extensions
        if not any(s & ext == s for s in survivors)
    ]
    return minimize_sets(candidates)


@dataclass
class FdepResult:
    """Output of an FDEP run."""

    schema: Schema
    num_rows: int
    fds: List[FD]
    lhs_sets: Dict[int, List[int]]
    negative_cover: Dict[int, List[int]]
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


class Fdep:
    """FDEP runner (negative cover + specialization)."""

    def __init__(self, nulls_equal: bool = True):
        self.nulls_equal = nulls_equal

    def run(self, relation: Relation) -> FdepResult:
        start = time.perf_counter()
        spdb = StrippedPartitionDatabase.from_relation(
            relation, nulls_equal=self.nulls_equal
        )
        strip_seconds = time.perf_counter() - start

        start = time.perf_counter()
        agree = agree_sets_from_identifiers(spdb)
        negative_cover = maximal_sets(agree, spdb.schema)
        negative_seconds = time.perf_counter() - start

        start = time.perf_counter()
        schema = spdb.schema
        universe = schema.universe_mask
        lhs_sets: Dict[int, List[int]] = {}
        for attribute in range(len(schema)):
            rhs_bit = 1 << attribute
            hypotheses = [0]  # start from ∅ -> A
            for witness in negative_cover[attribute]:
                hypotheses = specialize_hypotheses(
                    witness, hypotheses, universe, rhs_bit
                )
                if not hypotheses:
                    break
            lhs_sets[attribute] = sorted(hypotheses)
        specialize_seconds = time.perf_counter() - start

        fds = [
            FD(AttributeSet(schema, lhs), attribute)
            for attribute, masks in lhs_sets.items()
            for lhs in masks
            if lhs != (1 << attribute)
        ]
        return FdepResult(
            schema=schema,
            num_rows=spdb.num_rows,
            fds=sort_fds(fds),
            lhs_sets=lhs_sets,
            negative_cover=negative_cover,
            phase_seconds={
                "strip": strip_seconds,
                "negative_cover": negative_seconds,
                "specialize": specialize_seconds,
            },
        )
