"""FDEP [Savnik & Flach 1993] — bottom-up induction of FDs.

The second related miner the paper cites (besides TANE): FDEP first
builds the *negative cover* — the maximal "non-dependencies" witnessed
by tuple pairs, which in this codebase are exactly the maximal sets
derived from agree sets — then *specializes* the trivial hypothesis
``∅ → A`` against every negative witness: an lhs contained in a witness
cannot determine ``A``, so it is replaced by its one-attribute
extensions that escape the witness, keeping the set minimal throughout.

The result provably equals ``lhs(dep(r), A)`` (it computes the same
minimal transversals, by incremental specialization rather than
levelwise search or DFS), which the tests assert against Dep-Miner and
the brute force.  It is included as a faithfully different *algorithm*,
not a re-skin: its working set is the evolving hypothesis antichain, and
its costs concentrate on the minimization after each specialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.agree_sets import agree_sets_from_identifiers
from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.core.maximal_sets import maximal_sets
from repro.core.relation import Relation
from repro.fd.fd import FD, sort_fds
from repro.hypergraph.hypergraph import minimize_sets
from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    ProgressCallback,
    Tracer,
    emit_progress,
    get_logger,
)
from repro.partitions.database import StrippedPartitionDatabase

__all__ = ["Fdep", "FdepResult", "specialize_hypotheses"]

logger = get_logger(__name__)


def specialize_hypotheses(witness_mask: int, hypotheses: List[int],
                          universe: int, rhs_bit: int) -> List[int]:
    """One FDEP specialization step.

    Every hypothesis lhs contained in *witness_mask* is refuted (the
    witness pair agrees on it but not on the rhs) and is replaced by its
    extensions with one attribute outside ``witness ∪ {rhs}``.  The
    surviving family is re-minimized so it stays an antichain.
    """
    survivors: List[int] = []
    refuted: List[int] = []
    for lhs in hypotheses:
        if lhs & ~witness_mask:
            survivors.append(lhs)
        else:
            refuted.append(lhs)
    if not refuted:
        return hypotheses
    escape_bits = universe & ~witness_mask & ~rhs_bit
    extensions: Set[int] = set()
    for lhs in refuted:
        for bit_index in iter_bits(escape_bits):
            extensions.add(lhs | (1 << bit_index))
    # Keep only extensions not already covered by a surviving hypothesis.
    candidates = survivors + [
        ext
        for ext in extensions
        if not any(s & ext == s for s in survivors)
    ]
    return minimize_sets(candidates)


@dataclass
class FdepResult:
    """Output of an FDEP run."""

    schema: Schema
    num_rows: int
    fds: List[FD]
    lhs_sets: Dict[int, List[int]]
    negative_cover: Dict[int, List[int]]
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    trace: Optional[Tracer] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())


class Fdep:
    """FDEP runner (negative cover + specialization).

    *tracer*/*metrics*/*progress* are the optional observability hooks
    of :mod:`repro.obs`: phase spans (``strip`` → ``negative_cover`` →
    ``specialize``), artefact counters, and a per-attribute progress
    callback (stage ``"fdep.attributes"``).
    """

    def __init__(self, nulls_equal: bool = True,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 progress: Optional[ProgressCallback] = None):
        self.nulls_equal = nulls_equal
        self.tracer = tracer
        self.metrics = metrics
        self.progress = progress
        #: Tracer of the most recent run (partial on error paths).
        self.last_trace: Optional[Tracer] = None

    def run(self, relation: Relation) -> FdepResult:
        tracer = self.tracer if self.tracer is not None else Tracer()
        self.last_trace = tracer
        mark = tracer.mark()
        metrics = self.metrics if self.metrics is not None else NULL_METRICS

        with tracer.span("fdep.run", width=len(relation.schema),
                         rows=len(relation)):
            with tracer.span("strip", phase=True):
                spdb = StrippedPartitionDatabase.from_relation(
                    relation, nulls_equal=self.nulls_equal, metrics=metrics
                )

            with tracer.span("negative_cover", phase=True):
                agree = agree_sets_from_identifiers(
                    spdb, metrics=metrics, progress=self.progress
                )
                negative_cover = maximal_sets(agree, spdb.schema)
                metrics.gauge(
                    "fdep.negative_cover.edges",
                    sum(len(edges) for edges in negative_cover.values()),
                )

            with tracer.span("specialize", phase=True):
                schema = spdb.schema
                universe = schema.universe_mask
                lhs_sets: Dict[int, List[int]] = {}
                for attribute in range(len(schema)):
                    emit_progress(
                        self.progress, "fdep.attributes", attribute,
                        len(schema),
                    )
                    rhs_bit = 1 << attribute
                    hypotheses = [0]  # start from ∅ -> A
                    for witness in negative_cover[attribute]:
                        hypotheses = specialize_hypotheses(
                            witness, hypotheses, universe, rhs_bit
                        )
                        metrics.inc("fdep.specializations")
                        if not hypotheses:
                            break
                    lhs_sets[attribute] = sorted(hypotheses)

            fds = [
                FD(AttributeSet(schema, lhs), attribute)
                for attribute, masks in lhs_sets.items()
                for lhs in masks
                if lhs != (1 << attribute)
            ]
            metrics.gauge("fd.count", len(fds))
        logger.debug(
            "FDEP mined %d minimal FDs over %d attributes and %d rows",
            len(fds), len(schema), spdb.num_rows,
        )
        return FdepResult(
            schema=schema,
            num_rows=spdb.num_rows,
            fds=sort_fds(fds),
            lhs_sets=lhs_sets,
            negative_cover=negative_cover,
            phase_seconds=tracer.phase_seconds(mark),
            trace=tracer,
        )
