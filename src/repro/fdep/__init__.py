"""FDEP baseline [SF93]: bottom-up FD induction via negative cover and
hypothesis specialization."""

from repro.fdep.fdep import Fdep, FdepResult, specialize_hypotheses

__all__ = ["Fdep", "FdepResult", "specialize_hypotheses"]
