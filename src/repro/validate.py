"""End-to-end validation of mining results.

``validate_result`` re-checks every invariant the Dep-Miner pipeline is
supposed to guarantee, directly against the relation:

1. every reported FD holds, is non-trivial, and is lhs-minimal;
2. the agree sets are exactly ``ag(r)`` (checked against the naive
   all-pairs oracle — quadratic, so guarded by a size limit);
3. ``max(dep(r), A)`` is an antichain of agree sets avoiding ``A``,
   maximal among them;
4. ``lhs(dep(r), A)`` are minimal transversals of the cmax hypergraph;
5. the Armstrong relations (classical and real-world) satisfy exactly
   the same minimal FDs (checked by re-mining them);
6. the real-world relation draws every value from the input and meets
   Proposition 1's size bound.

Violations are collected (not raised) into a report, so a failed run
shows everything that is wrong at once.  This is the library's built-in
answer to "do I trust this output?" and is itself exercised by the test
suite on known-good and deliberately corrupted results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.agree_sets import naive_agree_sets
from repro.core.depminer import DepMinerResult
from repro.core.relation import Relation
from repro.hypergraph.hypergraph import SimpleHypergraph, maximize_sets

__all__ = ["ValidationReport", "validate_result"]

_NAIVE_ORACLE_LIMIT = 2000  # rows; above this the O(p²) checks are skipped


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_result`."""

    violations: List[str] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, check: str) -> None:
        self.checks_run.append(check)

    def fail(self, message: str) -> None:
        self.violations.append(message)

    def render(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [f"validation: {status} ({len(self.checks_run)} checks)"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


def validate_result(result: DepMinerResult, relation: Relation,
                    deep: bool = True) -> ValidationReport:
    """Re-check the pipeline invariants of *result* against *relation*.

    ``deep=True`` adds the quadratic agree-set oracle and the Armstrong
    re-mining checks (skipped automatically above
    ``_NAIVE_ORACLE_LIMIT`` rows).
    """
    report = ValidationReport()
    schema = result.schema
    universe = schema.universe_mask

    # 1. Every FD holds, is non-trivial and minimal.
    report.add("fds-hold-and-minimal")
    for fd in result.fds:
        rhs = schema.from_mask(fd.rhs_mask)
        if fd.is_trivial():
            report.fail(f"trivial FD reported: {fd}")
        if not relation.satisfies(fd.lhs, rhs):
            report.fail(f"reported FD does not hold: {fd}")
        for attribute in fd.lhs.indices():
            if relation.satisfies(fd.lhs.remove(attribute), rhs):
                report.fail(f"non-minimal lhs: {fd} (drop {attribute})")

    # 2. Agree sets match the naive oracle.
    if deep and len(relation) <= _NAIVE_ORACLE_LIMIT:
        report.add("agree-sets-oracle")
        expected = naive_agree_sets(relation)
        if result.agree_sets != expected:
            missing = sorted(expected - result.agree_sets)
            extra = sorted(result.agree_sets - expected)
            report.fail(
                f"agree sets differ from oracle "
                f"(missing={missing[:5]}, extra={extra[:5]})"
            )

    # 3. Maximal sets are maximal agree sets avoiding their attribute.
    report.add("max-sets-structure")
    for attribute, masks in result.max_sets.items():
        bit = 1 << attribute
        candidates = [m for m in result.agree_sets if not m & bit]
        if sorted(masks) != maximize_sets(candidates):
            report.fail(
                f"max(dep(r), {schema.name_of(attribute)}) is not the "
                f"maximal agree-set family"
            )

    # 4. lhs families are the minimal transversals of cmax.
    report.add("lhs-are-minimal-transversals")
    for attribute, edges in result.cmax_sets.items():
        lhs_masks = result.lhs_sets[attribute]
        if not edges:
            if lhs_masks != [0]:
                report.fail(
                    f"constant attribute {schema.name_of(attribute)} "
                    f"should have lhs family [∅]"
                )
            continue
        hypergraph = SimpleHypergraph(
            len(schema), edges, check_simple=False
        )
        for mask in lhs_masks:
            if not hypergraph.is_minimal_transversal(mask):
                report.fail(
                    f"lhs {bin(mask)} of {schema.name_of(attribute)} is "
                    f"not a minimal transversal of cmax"
                )

    # 5./6. Armstrong relations.
    if result.armstrong is not None:
        report.add("armstrong-size-and-values")
        if len(result.armstrong) != len(result.max_union) + 1:
            report.fail("real-world Armstrong relation has the wrong size")
        for name in schema.names:
            if not set(result.armstrong.column(name)) <= set(
                relation.column(name)
            ):
                report.fail(
                    f"Armstrong column {name} holds values not in the input"
                )
    if deep and len(schema) <= 10:
        from repro.core.depminer import DepMiner

        miner = DepMiner(build_armstrong="none")
        for label, candidate in (
            ("classical", result.classical_armstrong),
            ("real-world", result.armstrong),
        ):
            if candidate is None:
                continue
            report.add(f"armstrong-dep-equality-{label}")
            if miner.run(candidate).fds != result.fds:
                report.fail(
                    f"the {label} Armstrong relation does not satisfy "
                    f"exactly the mined FDs"
                )
    return report
