"""Bundled example relations.

Small, well-understood datasets used by the examples, the CLI's
``example`` command and the golden tests.  The first is the paper's own
running example (section 2, example 1); the others are classic textbook
schemas exercising different FD structures.
"""

from __future__ import annotations

from repro.core.attributes import Schema
from repro.core.relation import Relation

__all__ = [
    "paper_example_relation",
    "paper_example_schema",
    "course_schedule_relation",
    "supplier_parts_relation",
]


def paper_example_schema(short_names: bool = False) -> Schema:
    """The employee/department schema of example 1.

    With ``short_names=True`` the attributes are renamed ``A..E`` as the
    paper does "for briefness".
    """
    if short_names:
        return Schema(["A", "B", "C", "D", "E"])
    return Schema(["empnum", "depnum", "year", "depname", "mgr"])


def paper_example_relation(short_names: bool = False) -> Relation:
    """The 7-tuple relation of example 1 (assignment of employees to
    departments)."""
    rows = [
        (1, 1, 85, "Biochemistry", 5),
        (1, 5, 94, "Admission", 12),
        (2, 2, 92, "Computer Sce", 2),
        (3, 2, 98, "Computer Sce", 2),
        (4, 3, 98, "Geophysics", 2),
        (5, 1, 75, "Biochemistry", 5),
        (6, 5, 88, "Admission", 12),
    ]
    return Relation.from_rows(paper_example_schema(short_names), rows)


def course_schedule_relation() -> Relation:
    """A course-scheduling relation with a layered FD structure.

    Holds ``course → teacher``, ``(room, slot) → course`` and
    ``teacher → dept`` — the classic normalization-exercise shape, used
    by the logical-tuning example.
    """
    schema = Schema(["course", "teacher", "dept", "room", "slot"])
    rows = [
        ("db", "smith", "cs", "r1", "mon9"),
        ("db", "smith", "cs", "r1", "tue9"),
        ("db", "smith", "cs", "r2", "wed9"),
        ("os", "jones", "cs", "r1", "wed9"),
        ("os", "jones", "cs", "r2", "mon9"),
        ("ai", "davis", "cs", "r3", "mon9"),
        ("ml", "davis", "cs", "r3", "tue9"),
        ("ai", "davis", "cs", "r1", "fri9"),
        ("calc", "wong", "math", "r4", "mon9"),
        ("calc", "wong", "math", "r4", "tue9"),
        ("calc", "wong", "math", "r4", "thu9"),
        ("alg", "patel", "math", "r4", "wed9"),
        ("alg", "patel", "math", "r2", "fri9"),
    ]
    return Relation.from_rows(schema, rows)


def supplier_parts_relation() -> Relation:
    """Date's suppliers-and-parts, with city functionally determined by
    supplier and status by city."""
    schema = Schema(["sno", "sname", "status", "city", "pno", "qty"])
    rows = [
        ("s1", "smith", 20, "london", "p1", 300),
        ("s1", "smith", 20, "london", "p2", 200),
        ("s1", "smith", 20, "london", "p3", 400),
        ("s2", "jones", 10, "paris", "p1", 300),
        ("s2", "jones", 10, "paris", "p2", 400),
        ("s3", "blake", 10, "paris", "p2", 200),
        ("s4", "clark", 20, "london", "p2", 200),
        ("s4", "clark", 20, "london", "p4", 300),
        ("s4", "clark", 20, "london", "p5", 400),
        ("s5", "adams", 30, "athens", "p5", 400),
        ("s5", "adams", 30, "athens", "p6", 100),
    ]
    return Relation.from_rows(schema, rows)
