"""Profiling reports: everything the DBA needs about one table.

Bundles the full "logical tuning" workflow of the paper's introduction
into a single artefact: column statistics, the minimal FD cover, the
real-world Armstrong sample, candidate keys, normal-form status, and a
suggested 3NF decomposition — rendered as markdown (or plain text) so it
can be dropped into a ticket or design document.

    from repro.report import profile_relation
    print(profile_relation(relation).to_markdown())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.depminer import DepMiner, DepMinerResult
from repro.core.ranking import FDEvidence, rank_fds
from repro.core.relation import Relation
from repro.fd.cover import minimal_cover
from repro.fd.fd import FD
from repro.fd.keys import candidate_keys
from repro.fd.normalize import (
    Decomposition,
    is_2nf,
    is_3nf,
    is_bcnf,
    synthesize_3nf,
)

__all__ = ["ProfileReport", "profile_relation"]

_KEY_ENUMERATION_LIMIT = 32


@dataclass
class ProfileReport:
    """A complete single-table profile."""

    name: str
    relation: Relation
    mining: DepMinerResult
    cover: List[FD]
    keys: List
    normal_forms: Dict[str, bool]
    decomposition: List[Decomposition]
    evidence: List[FDEvidence]

    # -- rendering ----------------------------------------------------------

    def to_markdown(self) -> str:
        relation = self.relation
        lines = [f"# Profile of `{self.name}`", ""]
        lines.append(
            f"{len(relation)} tuples over {len(relation.schema)} attributes."
        )
        lines.append("")

        lines.append("## Columns")
        lines.append("")
        lines.append("| attribute | distinct values |")
        lines.append("|---|---|")
        for attribute, count in relation.active_domain_sizes().items():
            lines.append(f"| {attribute} | {count} |")
        lines.append("")

        lines.append(
            f"## Minimal functional dependencies ({len(self.mining.fds)})"
        )
        lines.append("")
        lines.append(
            "Ordered by supporting evidence (tuple pairs that test the "
            "FD); *vacuous* FDs hold only because their lhs is unique in "
            "this extension and deserve scrutiny before being treated as "
            "business rules."
        )
        lines.append("")
        for evidence in self.evidence:
            if evidence.is_vacuous:
                lines.append(f"- `{evidence.fd}` — *vacuous*")
            else:
                lines.append(
                    f"- `{evidence.fd}` — {evidence.witness_pairs} "
                    f"supporting pair(s)"
                )
        lines.append("")

        if self.cover != self.mining.fds:
            lines.append(
                f"Canonical cover ({len(self.cover)} FDs after removing "
                "redundancy):"
            )
            lines.append("")
            for fd in self.cover:
                lines.append(f"- `{fd}`")
            lines.append("")

        lines.append("## Candidate keys")
        lines.append("")
        for key in self.keys:
            lines.append(f"- ({', '.join(key.names)})")
        if len(self.keys) >= _KEY_ENUMERATION_LIMIT:
            lines.append(f"- ... (enumeration capped at {len(self.keys)})")
        lines.append("")

        lines.append("## Normal forms")
        lines.append("")
        for form, holds in self.normal_forms.items():
            state = "yes" if holds else "NO"
            lines.append(f"- {form}: {state}")
        lines.append("")

        if not self.normal_forms["BCNF"]:
            lines.append("## Suggested 3NF decomposition")
            lines.append("")
            for fragment in self.decomposition:
                fds = "; ".join(f"`{fd}`" for fd in fragment.fds)
                suffix = f" — {fds}" if fds else " (key fragment)"
                lines.append(f"- {fragment}{suffix}")
            lines.append("")

        armstrong = self.mining.armstrong
        if armstrong is not None:
            lines.append(
                f"## Real-world Armstrong sample "
                f"({len(armstrong)} of {len(relation)} tuples)"
            )
            lines.append("")
            lines.append("```")
            lines.append(armstrong.to_text(max_rows=len(armstrong)))
            lines.append("```")
        else:
            lines.append("## Armstrong sample")
            lines.append("")
            lines.append(
                "No real-world Armstrong relation exists (some attribute "
                "has too few distinct values — Proposition 1); the "
                "classical construction is available as "
                "`mining.classical_armstrong`."
            )
        lines.append("")
        return "\n".join(lines)

    def summary_line(self) -> str:
        forms = "/".join(
            form for form, holds in self.normal_forms.items() if holds
        ) or "not even 2NF"
        return (
            f"{self.name}: {len(self.mining.fds)} FDs, "
            f"{len(self.keys)} key(s), {forms}"
        )


def profile_relation(relation: Relation, name: str = "relation",
                     miner: Optional[DepMiner] = None,
                     source=None) -> ProfileReport:
    """Run the full profiling workflow over one relation.

    *source* optionally carries the mining-side view of the same data —
    a :class:`repro.columnar.ingest.CodedRelation` from the streaming
    ingest path — so a columnar miner runs on the code matrix while the
    row-wise profiling stages keep using *relation*.
    """
    miner = miner or DepMiner()
    mining = miner.run(source if source is not None else relation)
    schema = relation.schema
    cover = minimal_cover(mining.fds)
    keys = candidate_keys(cover, schema, limit=_KEY_ENUMERATION_LIMIT)
    normal_forms = {
        "2NF": is_2nf(cover, schema),
        "3NF": is_3nf(cover, schema),
        "BCNF": is_bcnf(cover, schema),
    }
    decomposition = (
        synthesize_3nf(cover, schema) if not normal_forms["BCNF"] else []
    )
    evidence = rank_fds(relation, mining.fds, nulls_equal=miner.nulls_equal)
    return ProfileReport(
        name=name,
        relation=relation,
        mining=mining,
        cover=cover,
        keys=keys,
        normal_forms=normal_forms,
        decomposition=decomposition,
        evidence=evidence,
    )
