"""Guided-sampling FD discovery for very large relations.

The paper designs Dep-Miner "under the assumption of limited main memory
resources"; the classical complementary technique (Kivinen & Mannila's
sampling bounds, the self-tuning loop of [MR94a]) is to mine a *sample*
and repair it with counterexamples:

1. mine the minimal FDs of a small random sample ``s ⊆ r``;
2. verify each mined FD against the full relation with one hash scan;
3. for every FD that fails, add the witnessing tuple pair to the sample
   and repeat.

Because ``s ⊆ r`` implies ``dep(r) ⊆ dep(s)``, the loop converges to a
sample whose minimal FDs all hold in ``r`` — and at that point they are
exactly a cover of ``dep(r)`` (any FD of ``r`` is in ``dep(s)``, hence
implied by the sample's minimal cover, all of which holds in ``r``).
The result is therefore *exact*, not approximate; sampling only buys
speed, since the expensive pair enumeration runs on the sample.

The final sample is itself an interesting by-product: like a real-world
Armstrong relation it is small, uses only values of ``r``, and satisfies
exactly ``dep(r)``'s consequences among the mined lhs families (it is a
"witness sample" rather than a full Armstrong relation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.errors import ReproError
from repro.fd.fd import FD, sort_fds

__all__ = ["SamplingResult", "discover_with_sampling"]


@dataclass
class SamplingResult:
    """Outcome of the sample-and-verify loop."""

    fds: List[FD]
    sample: Relation
    rounds: int
    verifications: int

    @property
    def sample_size(self) -> int:
        return len(self.sample)


def discover_with_sampling(relation: Relation, sample_size: int = 256,
                           seed: int = 0, max_rounds: Optional[int] = None,
                           **miner_options) -> SamplingResult:
    """Discover the exact minimal FDs of *relation* via guided sampling.

    *sample_size* is the size of the initial random sample (clamped to
    the relation); *max_rounds* optionally bounds the repair loop (it
    raises :class:`ReproError` when exceeded — with the default ``None``
    the loop always converges, adding at least one counterexample pair
    per round).  Extra keyword options go to the inner :class:`DepMiner`.

    >>> # doctest-style sketch:
    >>> # result = discover_with_sampling(big_relation, sample_size=512)
    >>> # result.fds == discover_fds(big_relation)
    """
    if sample_size < 1:
        raise ReproError("sample_size must be positive")
    miner_options.setdefault("build_armstrong", "none")
    miner = DepMiner(**miner_options)
    num_rows = len(relation)
    rng = random.Random(seed)
    if num_rows <= sample_size:
        chosen = list(range(num_rows))
    else:
        chosen = sorted(rng.sample(range(num_rows), sample_size))
    in_sample = set(chosen)

    schema = relation.schema
    rounds = 0
    verifications = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise ReproError(
                f"sampling did not converge within {max_rounds} rounds"
            )
        sample = relation.take(chosen)
        candidate_fds = miner.run(sample).fds
        # Verify per *distinct lhs*: one hash scan checks every FD that
        # shares the determinant, which is what keeps verification cheap
        # relative to mining the full relation.
        by_lhs: dict = {}
        for fd in candidate_fds:
            by_lhs.setdefault(fd.lhs.mask, 0)
            by_lhs[fd.lhs.mask] |= fd.rhs_mask
        new_rows = []
        for lhs_mask, rhs_mask in by_lhs.items():
            verifications += 1
            violations = _find_violations_grouped(
                relation, lhs_mask, rhs_mask
            )
            for row_pair in violations:
                for row in row_pair:
                    if row not in in_sample:
                        in_sample.add(row)
                        new_rows.append(row)
        if not new_rows:
            return SamplingResult(
                fds=sort_fds(candidate_fds),
                sample=sample,
                rounds=rounds,
                verifications=verifications,
            )
        chosen = sorted(in_sample)


def _find_violations_grouped(relation: Relation, lhs_mask: int,
                             rhs_mask: int) -> List[tuple]:
    """One witness pair per violated rhs attribute, in a single scan.

    Checks every FD ``lhs → A`` for ``A`` in *rhs_mask* simultaneously:
    tuples are grouped by their lhs projection; the first group member
    serves as the representative, and the first disagreement on each
    still-unviolated rhs attribute is reported.
    """
    from repro.core.attributes import iter_bits

    columns = [relation.column(i) for i in range(len(relation.schema))]
    lhs_indices = tuple(iter_bits(lhs_mask))
    rhs_indices = list(iter_bits(rhs_mask))
    representative: dict = {}
    pending = set(rhs_indices)
    witnesses: List[tuple] = []
    for i in range(len(relation)):
        key = tuple(columns[a][i] for a in lhs_indices)
        first = representative.setdefault(key, i)
        if first == i or not pending:
            continue
        for attribute in list(pending):
            if columns[attribute][first] != columns[attribute][i]:
                witnesses.append((first, i))
                pending.discard(attribute)
    return witnesses
