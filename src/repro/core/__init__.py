"""Dep-Miner core: the paper's primary contribution.

Modules follow the pipeline of Figure 1: attribute sets and relations
(`attributes`, `relation`), agree sets (`agree_sets`), maximal sets
(`maximal_sets`), left-hand sides (`lhs`), Armstrong relations
(`armstrong`), and the orchestrator (`depminer`).
"""

from repro.core.attributes import AttributeSet, Schema
from repro.core.depminer import DepMiner, DepMinerResult, discover, discover_fds
from repro.core.relation import Relation

__all__ = [
    "AttributeSet",
    "Schema",
    "Relation",
    "DepMiner",
    "DepMinerResult",
    "discover",
    "discover_fds",
]
