"""Agree-set computation (section 3.1 of the paper).

Three algorithms, all returning ``ag(r)`` as a set of attribute bitmasks:

- :func:`naive_agree_sets` — the O(n·p²) all-pairs baseline the paper
  opens with; impractical for large ``p`` but the obvious correctness
  oracle.
- :func:`agree_sets_from_couples` — the paper's Algorithm 2
  (``AGREE_SET``): enumerate tuple couples inside the maximal equivalence
  classes ``MC`` (Lemma 1), then sweep the stripped partitions attribute
  by attribute, adding attribute ``A`` to ``ag(t, t')`` whenever the
  couple lies in a common class of ``π̂A``.  The membership test "t ∈ c
  and t' ∈ c" is evaluated through a row → class-index table per
  attribute, which is exactly the bit-vector trick of the original C++
  implementation.  A ``max_couples`` threshold bounds how many couples
  are materialised at once: when it is reached, the current chunk is
  resolved into agree sets and discarded before the enumeration resumes
  (the memory safeguard described at the end of section 3.1).
- :func:`agree_sets_from_identifiers` — Algorithm 3 (``AGREE_SET_2``):
  store ``ec(t)``, the equivalence-class identifiers of each tuple, and
  obtain ``ag(t, t')`` by intersecting identifier sets (Lemma 2).  Cheaper
  when classes are large, because the per-couple cost is proportional to
  the number of attributes where the tuples sit in *some* stripped class
  rather than to |R|.

``ag(r)`` contains the empty set exactly when two tuples disagree on
every attribute.  The couple enumeration never visits such a pair (they
share no class), so both algorithms detect the situation by comparing the
number of distinct couples visited with ``p·(p−1)/2`` — if some pair was
never visited, ``∅ ∈ ag(r)``.  This matters for correctness of the
maximal-set derivation on relations where an attribute's only "failing"
witness is a fully-disagreeing pair.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.relation import Relation
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressCallback, emit_progress
from repro.partitions.database import StrippedPartitionDatabase

__all__ = [
    "naive_agree_sets",
    "agree_sets_from_couples",
    "agree_sets_from_identifiers",
    "agree_sets",
    "AGREE_SET_ALGORITHMS",
    "build_class_index_tables",
    "resolve_couples_with_tables",
    "resolve_couples_with_identifiers",
    "empty_agree_set_present",
    "iter_distinct_couples",
]

# Couples between progress-callback invocations in the enumeration loops.
PROGRESS_INTERVAL = 1024


def naive_agree_sets(relation: Relation) -> Set[int]:
    """All-pairs ``ag(r)`` in O(n·p²) — the baseline of section 3.1.

    Includes ``∅`` when two tuples disagree everywhere (and also when the
    relation has duplicate rows the full mask ``R``, like the other
    algorithms: duplicates agree on every attribute).
    """
    num_rows = len(relation)
    columns = [relation.column(i) for i in range(len(relation.schema))]
    result: Set[int] = set()
    for i in range(num_rows):
        for j in range(i + 1, num_rows):
            mask = 0
            for a, column in enumerate(columns):
                if column[i] == column[j]:
                    mask |= 1 << a
            result.add(mask)
    return result


def _couples_of_maximal_classes(
    spdb: StrippedPartitionDatabase,
    mc: Optional[List[Tuple[int, ...]]] = None,
) -> Iterator[Tuple[int, int]]:
    """Yield each candidate couple once, from the classes of ``MC``.

    Couples are deduplicated across overlapping maximal classes so each
    (t, t′) is resolved — and, crucially, *counted* — exactly once.
    The deduplication must happen on the stream, before any chunking:
    a couple shared by two maximal classes could otherwise land in two
    different chunks (or shards of the parallel execution layer), get
    double-counted, and defeat the distinct-couple comparison of
    :func:`empty_agree_set_present`.  *mc* may carry a precomputed
    maximal-class list (the orchestrator reuses it for statistics).
    """
    seen: Set[Tuple[int, int]] = set()
    for cls in (spdb.maximal_classes() if mc is None else mc):
        for couple in combinations(cls, 2):
            if couple not in seen:
                seen.add(couple)
                yield couple


def empty_agree_set_present(spdb: StrippedPartitionDatabase,
                            num_distinct_couples: int) -> bool:
    """Was some pair of tuples never inside a common class?

    Such a pair disagrees on every attribute, hence ``∅ ∈ ag(r)``.
    *num_distinct_couples* must count each visited couple once (see
    :func:`_couples_of_maximal_classes`); a count inflated by re-visits
    across chunk or shard boundaries could reach ``p·(p−1)/2`` and mask
    the empty agree set.
    """
    num_rows = spdb.num_rows
    total_pairs = num_rows * (num_rows - 1) // 2
    return num_distinct_couples < total_pairs


# Backwards-compatible private alias (pre-parallel-layer name).
_empty_agree_set_present = empty_agree_set_present


def iter_distinct_couples(
    spdb: StrippedPartitionDatabase,
    mc: Optional[List[Tuple[int, ...]]] = None,
) -> Iterator[Tuple[int, int]]:
    """The deduplicated candidate-couple stream (each couple once).

    Public entry point for the parallel execution layer, which chunks
    this stream into shards; the deduplication-before-chunking contract
    of :func:`_couples_of_maximal_classes` is what keeps the distinct
    count (and thus the ∅ detection) correct across shard boundaries.
    """
    return _couples_of_maximal_classes(spdb, mc)


def build_class_index_tables(
    spdb: StrippedPartitionDatabase,
) -> List[Dict[int, int]]:
    """Row → class-index table per attribute (Algorithm 2's bit vectors).

    One dict per attribute, mapping each row to the index of its
    stripped class under that attribute (rows in singleton classes are
    absent).  This is the read-only structure both the serial couples
    algorithm and the sharded workers resolve couples against.
    """
    class_of: List[Dict[int, int]] = []
    for _attribute, partition in spdb:
        table: Dict[int, int] = {}
        for class_index, cls in enumerate(partition):
            for row in cls:
                table[row] = class_index
        class_of.append(table)
    return class_of


def resolve_couples_with_tables(
    couples: Iterable[Tuple[int, int]],
    class_of: List[Dict[int, int]],
) -> Set[int]:
    """Agree-set masks of *couples* via the class-index tables.

    The single shared implementation of Algorithm 2's lines 12–16: the
    serial path and every shard of the parallel execution layer call
    exactly this function, which is what makes ``--jobs N`` bit-for-bit
    identical to the serial run.
    """
    result: Set[int] = set()
    for t, t_prime in couples:
        mask = 0
        for attribute, table in enumerate(class_of):
            left = table.get(t)
            if left is not None and left == table.get(t_prime):
                mask |= 1 << attribute
        result.add(mask)
    return result


def resolve_couples_with_identifiers(
    couples: Iterable[Tuple[int, int]],
    identifiers: Dict[int, Dict[int, int]],
) -> Set[int]:
    """Agree-set masks of *couples* via identifier-set intersection.

    The shared implementation of Algorithm 3's Lemma 2 step (serial and
    sharded paths alike).
    """
    empty: Dict[int, int] = {}
    result: Set[int] = set()
    for t, t_prime in couples:
        ec_left = identifiers.get(t, empty)
        ec_right = identifiers.get(t_prime, empty)
        if len(ec_right) < len(ec_left):
            ec_left, ec_right = ec_right, ec_left
        mask = 0
        for attribute, class_index in ec_left.items():
            if ec_right.get(attribute) == class_index:
                mask |= 1 << attribute
        result.add(mask)
    return result


def agree_sets_from_couples(spdb: StrippedPartitionDatabase,
                            max_couples: Optional[int] = None,
                            mc: Optional[List[Tuple[int, ...]]] = None,
                            stats: Optional[Dict[str, int]] = None,
                            metrics: Optional[MetricsRegistry] = None,
                            progress: Optional[ProgressCallback] = None) -> Set[int]:
    """Algorithm 2 (``AGREE_SET``) — couples from ``MC`` + partition sweep.

    *max_couples* bounds the number of couples held in memory at once
    (``None`` = unbounded); the paper processes couples in chunks for the
    same reason.  *stats*, when given, receives the counters
    ``num_couples`` and ``num_chunks``.  *metrics* receives the
    ``agree.couples_enumerated`` counter; *progress* is called every
    :data:`PROGRESS_INTERVAL` couples (stage ``"agree_sets.couples"``)
    and may abort the enumeration by returning ``False``.
    """
    if max_couples is not None and max_couples < 1:
        raise ReproError("max_couples must be a positive integer or None")
    class_of = build_class_index_tables(spdb)

    result: Set[int] = set()
    chunk: List[Tuple[int, int]] = []
    # ``visited`` counts *distinct* couples: the enumeration dedups the
    # stream before chunking, so a couple shared by two maximal classes
    # cannot be double-counted across a chunk boundary (which would
    # break the ∅-detection below).
    visited = 0

    chunks = 0
    for couple in _couples_of_maximal_classes(spdb, mc):
        visited += 1
        chunk.append(couple)
        if max_couples is not None and len(chunk) >= max_couples:
            result |= resolve_couples_with_tables(chunk, class_of)
            chunk = []
            chunks += 1
        if progress is not None and visited % PROGRESS_INTERVAL == 0:
            emit_progress(progress, "agree_sets.couples", visited)
    result |= resolve_couples_with_tables(chunk, class_of)
    if chunk:
        chunks += 1
    if progress is not None and visited:
        emit_progress(progress, "agree_sets.couples", visited, visited)

    if metrics is not None:
        metrics.inc("agree.couples_enumerated", visited)
    if stats is not None:
        stats["num_couples"] = visited
        stats["num_chunks"] = max(chunks, 1 if visited else 0)
    if empty_agree_set_present(spdb, visited):
        result.add(0)
    return result


def agree_sets_from_identifiers(spdb: StrippedPartitionDatabase,
                                mc: Optional[List[Tuple[int, ...]]] = None,
                                stats: Optional[Dict[str, int]] = None,
                                metrics: Optional[MetricsRegistry] = None,
                                progress: Optional[ProgressCallback] = None) -> Set[int]:
    """Algorithm 3 (``AGREE_SET_2``) — identifier-set intersection.

    ``ec(t)`` is the map ``attribute → class index`` of the stripped
    classes containing ``t`` (Lemma 2); the agree set of a couple is the
    set of attributes where both maps give the same class.  *metrics*
    and *progress* behave as in :func:`agree_sets_from_couples`.
    """
    identifiers = spdb.equivalence_class_identifiers()
    result: Set[int] = set()
    visited = 0
    batch: List[Tuple[int, int]] = []
    for couple in _couples_of_maximal_classes(spdb, mc):
        visited += 1
        batch.append(couple)
        if len(batch) >= PROGRESS_INTERVAL:
            result |= resolve_couples_with_identifiers(batch, identifiers)
            batch = []
            if progress is not None:
                emit_progress(progress, "agree_sets.couples", visited)
    result |= resolve_couples_with_identifiers(batch, identifiers)
    if progress is not None and visited:
        emit_progress(progress, "agree_sets.couples", visited, visited)
    if metrics is not None:
        metrics.inc("agree.couples_enumerated", visited)
    if stats is not None:
        stats["num_couples"] = visited
    if empty_agree_set_present(spdb, visited):
        result.add(0)
    return result


AGREE_SET_ALGORITHMS = {
    "couples": agree_sets_from_couples,
    "identifiers": agree_sets_from_identifiers,
    "vectorized": None,  # resolved lazily (NumPy import)
}


def agree_sets(spdb: StrippedPartitionDatabase, algorithm: str = "couples",
               max_couples: Optional[int] = None,
               mc: Optional[List[Tuple[int, ...]]] = None,
               stats: Optional[Dict[str, int]] = None,
               metrics: Optional[MetricsRegistry] = None,
               progress: Optional[ProgressCallback] = None) -> Set[int]:
    """Compute ``ag(r)`` with the chosen algorithm.

    *algorithm* is ``"couples"`` (Algorithm 2, the Dep-Miner default) or
    ``"identifiers"`` (Algorithm 3, Dep-Miner 2).  *max_couples* only
    applies to the couples algorithm.  *metrics*/*progress* are the
    optional observability hooks (see :mod:`repro.obs`).
    """
    if algorithm == "couples":
        return agree_sets_from_couples(
            spdb, max_couples=max_couples, mc=mc, stats=stats,
            metrics=metrics, progress=progress,
        )
    if algorithm == "identifiers":
        if max_couples is not None:
            raise ReproError(
                "max_couples only applies to the 'couples' algorithm"
            )
        return agree_sets_from_identifiers(
            spdb, mc=mc, stats=stats, metrics=metrics, progress=progress
        )
    if algorithm == "vectorized":
        if max_couples is not None:
            raise ReproError(
                "max_couples only applies to the 'couples' algorithm"
            )
        try:
            from repro.core.agree_fast import agree_sets_vectorized
        except ImportError as error:
            raise ReproError(
                "agree_algorithm='vectorized' needs NumPy, which is not "
                "installed; run `pip install 'repro[fast]'` (or plain "
                "`pip install numpy`), or choose the pure-Python "
                "'couples'/'identifiers' algorithms"
            ) from error

        return agree_sets_vectorized(
            spdb, mc=mc, stats=stats, metrics=metrics, progress=progress
        )
    raise ReproError(
        f"unknown agree-set algorithm {algorithm!r}; "
        f"choose from {sorted(AGREE_SET_ALGORITHMS)}"
    )
