"""Vectorized agree-set computation (NumPy fast path).

Algorithm 2/3 compute, for every candidate couple, the set of attributes
on which the two tuples share a stripped equivalence class.  That
per-couple, per-attribute work is branchy Python — and the phase
breakdown benchmark shows it dominating Dep-Miner's runtime.  This
module performs the same computation column-at-a-time with NumPy:

1. per attribute, a ``row → class id`` array (``-1`` for singletons);
2. the candidate couples as two parallel index arrays;
3. per attribute, one vectorized comparison marks the agreeing couples,
   OR-ing the attribute's bit into a per-couple mask accumulator
   (``uint64`` lanes, several lanes for schemas wider than 63 bits);
4. one ``np.unique`` pass collapses the couples into the distinct agree
   sets.

Extensionally identical to the paper's algorithms (the property suite
holds all of them equal); typically an order of magnitude faster in
CPython.  Selectable as ``agree_algorithm="vectorized"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressCallback, emit_progress
from repro.partitions.database import StrippedPartitionDatabase

__all__ = ["agree_sets_vectorized"]

_BITS_PER_LANE = 63  # keep clear of uint64 sign pitfalls in conversions


def _couple_arrays(
    spdb: StrippedPartitionDatabase,
    mc: Optional[List[Tuple[int, ...]]],
) -> Tuple[np.ndarray, np.ndarray]:
    """The deduplicated candidate couples as two parallel index arrays.

    Pairs within each maximal class come from ``np.triu_indices``;
    cross-class duplicates (overlapping maximal classes share couples)
    are collapsed with one ``np.unique`` over a combined key.
    """
    classes = spdb.maximal_classes() if mc is None else mc
    by_size: Dict[int, List[Tuple[int, ...]]] = {}
    for cls in classes:
        by_size.setdefault(len(cls), []).append(cls)
    lefts: List[np.ndarray] = []
    rights: List[np.ndarray] = []
    # One batched triu per class *size*: thousands of tiny classes cost
    # two array operations instead of two allocations each.
    for size, group in by_size.items():
        members = np.asarray(group, dtype=np.int64)  # (k, size)
        i, j = np.triu_indices(size, k=1)
        lefts.append(members[:, i].ravel())
        rights.append(members[:, j].ravel())
    if not lefts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left = np.concatenate(lefts)
    right = np.concatenate(rights)
    keys = left * np.int64(spdb.num_rows) + right
    _unique, first_index = np.unique(keys, return_index=True)
    return left[first_index], right[first_index]


def agree_sets_vectorized(spdb: StrippedPartitionDatabase,
                          mc: Optional[List[Tuple[int, ...]]] = None,
                          stats: Optional[Dict[str, int]] = None,
                          metrics: Optional[MetricsRegistry] = None,
                          progress: Optional[ProgressCallback] = None) -> Set[int]:
    """``ag(r)`` via NumPy lane accumulation — same output as the others.

    The couple resolution is one array sweep per attribute rather than a
    per-couple loop, so *progress* reports once per attribute (stage
    ``"agree_sets.attributes"``) instead of per couple chunk.
    """
    num_rows = spdb.num_rows
    width = len(spdb.schema)
    left, right = _couple_arrays(spdb, mc)
    visited = int(left.shape[0])
    if stats is not None:
        stats["num_couples"] = visited
    if metrics is not None:
        metrics.inc("agree.couples_enumerated", visited)

    result: Set[int] = set()
    if visited:
        num_lanes = (width + _BITS_PER_LANE - 1) // _BITS_PER_LANE
        lanes = np.zeros((num_lanes, visited), dtype=np.uint64)
        for attribute, partition in spdb:
            if progress is not None:
                emit_progress(
                    progress, "agree_sets.attributes", attribute, width
                )
            class_of = np.full(num_rows, -1, dtype=np.int64)
            if partition.num_classes:
                members = np.fromiter(
                    (row for cls in partition for row in cls),
                    dtype=np.int64,
                    count=partition.num_rows_in_classes,
                )
                ids = np.repeat(
                    np.arange(partition.num_classes, dtype=np.int64),
                    [len(cls) for cls in partition],
                )
                class_of[members] = ids
            left_ids = class_of[left]
            agree = (left_ids >= 0) & (left_ids == class_of[right])
            lane, bit = divmod(attribute, _BITS_PER_LANE)
            lanes[lane, agree] |= np.uint64(1 << bit)
        if num_lanes == 1:
            for value in np.unique(lanes[0]):
                result.add(int(value))
        else:
            distinct = np.unique(lanes.T, axis=0)
            for row in distinct:
                mask = 0
                for lane in range(num_lanes):
                    mask |= int(row[lane]) << (lane * _BITS_PER_LANE)
                result.add(mask)

    total_pairs = num_rows * (num_rows - 1) // 2
    if visited < total_pairs:
        result.add(0)
    return result
