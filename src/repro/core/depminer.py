"""The Dep-Miner pipeline (Algorithm 1 of the paper).

``DepMiner`` wires the five steps together, mirroring Figure 1:

1. ``AGREE_SET`` — agree sets from the stripped partition database
   (Algorithm 2 with the couples enumeration, or Algorithm 3 with the
   identifier sets — the paper's *Dep-Miner* vs *Dep-Miner 2* variants);
2. ``CMAX_SET`` — maximal sets per attribute and their complements;
3. ``LEFT_HAND_SIDE`` — minimal transversals, levelwise;
4. ``FD_OUTPUT`` — the minimal non-trivial FD cover;
5. ``ARMSTRONG_RELATION`` — the real-world Armstrong relation (plus the
   classical integer-valued one), built from the very same maximal sets,
   which is why the paper gets it "without additional execution time".

The result object exposes every intermediate artefact — agree sets,
maximal sets, complements, lhs families — both as raw bitmasks (for
programmatic use) and as schema-aware :class:`AttributeSet` views, plus
per-phase wall-clock timings consumed by the benchmark harness.

Observability: every phase runs inside a :class:`repro.obs.Tracer` span
(pass your own ``tracer=`` to collect them, or read ``result.trace`` /
``DepMiner.last_trace``), artefact cardinalities go to an optional
:class:`repro.obs.MetricsRegistry`, and the long inner loops report to
an optional progress callback.  ``phase_seconds`` is *derived from the
span durations* — the dict keys and value semantics are unchanged from
earlier releases (see ``docs/observability.md`` for the compatibility
guarantee) — and because spans close even when a phase raises, partial
timings survive error paths such as :class:`ArmstrongExistenceError`
(read them from ``DepMiner.last_trace``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.agree_sets import agree_sets
from repro.core.armstrong import (
    classical_armstrong,
    real_world_armstrong,
    real_world_armstrong_exists,
)
from repro.core.attributes import AttributeSet, Schema
from repro.core.lhs import fd_output, left_hand_sides
from repro.core.maximal_sets import (
    complement_maximal_sets,
    max_set_union,
    maximal_sets,
)
from repro.core.relation import Relation
from repro.errors import ArmstrongExistenceError, ReproError
from repro.fd.fd import FD
from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    ProgressCallback,
    Tracer,
    get_logger,
)
from repro.parallel.executor import (
    PersistentPool,
    ShardedExecutor,
    resolve_jobs,
    resolve_start_method,
)
from repro.partitions.database import StrippedPartitionDatabase

__all__ = ["DepMiner", "DepMinerResult", "discover_fds", "discover"]

logger = get_logger(__name__)


@dataclass
class DepMinerResult:
    """Everything Dep-Miner produces for one input relation."""

    schema: Schema
    num_rows: int
    agree_sets: Set[int]
    max_sets: Dict[int, List[int]]
    cmax_sets: Dict[int, List[int]]
    lhs_sets: Dict[int, List[int]]
    fds: List[FD]
    max_union: List[int]
    armstrong: Optional[Relation]
    classical_armstrong: Optional[Relation]
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)
    trace: Optional[Tracer] = None

    # -- schema-aware views -------------------------------------------------

    def agree_sets_view(self) -> List[AttributeSet]:
        """``ag(r)`` as :class:`AttributeSet` objects, sorted."""
        return [self.schema.from_mask(m) for m in sorted(self.agree_sets)]

    def max_sets_view(self) -> Dict[str, List[AttributeSet]]:
        """``max(dep(r), A)`` keyed by attribute name."""
        return {
            self.schema.name_of(a): [self.schema.from_mask(m) for m in masks]
            for a, masks in self.max_sets.items()
        }

    def cmax_sets_view(self) -> Dict[str, List[AttributeSet]]:
        """``cmax(dep(r), A)`` keyed by attribute name."""
        return {
            self.schema.name_of(a): [self.schema.from_mask(m) for m in masks]
            for a, masks in self.cmax_sets.items()
        }

    def lhs_view(self) -> Dict[str, List[AttributeSet]]:
        """``lhs(dep(r), A)`` keyed by attribute name."""
        return {
            self.schema.name_of(a): [self.schema.from_mask(m) for m in masks]
            for a, masks in self.lhs_sets.items()
        }

    @property
    def armstrong_size(self) -> Optional[int]:
        """Tuples of the real-world Armstrong relation (None if not built)."""
        return len(self.armstrong) if self.armstrong is not None else None

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def summary(self) -> str:
        """One-paragraph human-readable summary (used by the CLI)."""
        lines = [
            f"relation: {len(self.schema)} attributes, {self.num_rows} tuples",
            f"agree sets: {len(self.agree_sets)}",
            f"maximal sets (union): {len(self.max_union)}",
            f"minimal FDs: {len(self.fds)}",
        ]
        if self.armstrong is not None:
            lines.append(
                f"real-world Armstrong relation: {len(self.armstrong)} tuples"
            )
        lines.append(f"time: {self.total_seconds:.3f}s")
        return "\n".join(lines)


class DepMiner:
    """Configurable Dep-Miner runner.

    Parameters
    ----------
    agree_algorithm:
        ``"couples"`` (Algorithm 2 — the paper's *Dep-Miner*),
        ``"identifiers"`` (Algorithm 3 — *Dep-Miner 2*) or
        ``"vectorized"`` (a NumPy fast path with identical output,
        typically 5–10x faster on large inputs).
    max_couples:
        Memory threshold for the couples algorithm (chunked processing);
        ``None`` keeps every couple in memory.
    transversal_algorithm:
        ``"kernel"`` (the default: the reduction + incremental-coverage
        kernel of :mod:`repro.hypergraph.kernel`), ``"vectorized"`` (the
        same kernel with the NumPy lane-packed batch backend, falling
        back to the pure kernel when NumPy is missing — install the
        ``repro[fast]`` extra), ``"levelwise"`` (the paper's Algorithm 5
        verbatim — pick this to reproduce the paper's exact search),
        ``"berge"`` (sequential baseline) or ``"dfs"`` (FastFDs-style
        search).  Every algorithm produces bit-for-bit the same FD
        cover; they differ only in speed.  ``transversal_method`` is the
        pre-kernel name of the same option, kept as an alias (passing
        both with different values is an error).
    build_armstrong:
        Whether step 5 runs.  ``"real-world"`` (default) builds the
        value-preserving relation when Proposition 1 allows it and falls
        back to the classical construction otherwise; ``"classical"``
        builds only the integer-valued one; ``"none"`` skips the step;
        ``"strict"`` builds the real-world relation and *raises*
        :class:`ArmstrongExistenceError` when it does not exist.
    nulls_equal:
        ``True`` (default) groups ``None`` values together (partition
        semantics); ``False`` switches to SQL ``NULL <> NULL``.
    max_lhs_size:
        Optional cap on the lhs size for very wide schemas; the output
        is then every minimal FD with at most that many lhs attributes
        (sound but incomplete).  Kernel, vectorized and levelwise
        methods only.
    cache:
        Optional :class:`repro.cache.ArtifactStore`.  ``run`` then
        fingerprints the relation (column-wise, row-order-insensitive)
        and memoizes each pipeline artefact — stripped partitions,
        ``ag(r)``, and the full cover bundle — under content-addressed
        stage keys, so re-mining the same relation (or any row
        permutation of it) skips straight to the cached artefacts.  The
        mined output is identical with or without a cache (the
        differential tests assert it); only ``run`` consults the cache
        (``run_on_partitions`` has no relation to fingerprint).  See
        ``docs/caching.md``.
    jobs:
        Worker processes for the sharded execution layer
        (:mod:`repro.parallel`).  ``1`` (default) is today's serial
        path; ``None``/``0`` uses every core.  Any value produces
        bit-for-bit identical output — with ``jobs > 1`` the agree-set
        couples are resolved in chunks by a process pool and the
        ``CMAX_SET`` + transversal tail fans out per RHS attribute
        (fused into the ``lhs`` phase span; the ``cmax`` span then
        covers only parent-side shard preparation).  The ``vectorized``
        agree algorithm always runs serial (NumPy is already
        column-parallel); its lhs phase still shards.
    shard_timeout:
        Optional per-shard timeout in seconds for ``jobs > 1``
        (:class:`repro.parallel.ShardTimeoutError` aborts the run).
    mp_context:
        Multiprocessing start method for the worker pool: ``"fork"``,
        ``"spawn"`` (or any method the platform offers).  ``None``
        (default) prefers fork where available.  An unavailable method
        raises :class:`repro.parallel.MpContextError` immediately.
    pool_mode:
        ``"persistent"`` (default) runs every pooled map of this miner
        on one lazily-built, reusable worker pool — reused across
        ``run()`` calls, which is what makes repeated daemon-style
        requests cheap — with the heavy shared context published
        zero-copy through the shared-memory arena.  ``"ephemeral"``
        restores the legacy pool-per-map behaviour.  Identical output
        either way (the oracle grid asserts it).
    shm:
        Shared-memory arena switch: ``None`` (auto, default) uses
        :mod:`multiprocessing.shared_memory` whenever available,
        ``False`` forces classic pickling, ``True`` insists on the
        arena where available.
    pool:
        An externally-owned :class:`repro.parallel.PersistentPool` to
        run on (the service shares one across sessions).  Worker count
        must match ``jobs``.  Without it the miner lazily builds and
        owns its own; :meth:`close` releases it.
    tracer:
        Optional :class:`repro.obs.Tracer` collecting the phase spans;
        when omitted each run uses a fresh private tracer, retrievable
        afterwards (even after an exception) as ``DepMiner.last_trace``.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` receiving artefact
        counters (couples enumerated, level sizes, FD counts, …).
    progress:
        Optional callback ``(stage, done, total) -> None | bool`` invoked
        from the long inner loops; returning ``False`` aborts the run
        with :class:`repro.obs.ProgressAborted`.
    backend:
        ``"python"`` (default) runs the classic row-at-a-time pipeline;
        ``"columnar"`` runs :mod:`repro.columnar` — integer-coded NumPy
        columns, lexsort grouping, batch agree-set intersection and
        lane-packed cmax derivation — with bit-for-bit the same cover
        (the oracle-conformance suite asserts it; see
        ``docs/columnar.md``).  The columnar backend ignores
        ``agree_algorithm`` (its resolution is inherently vectorized)
        and resolves the default ``"kernel"`` transversal method to the
        kernel's NumPy ``"vectorized"`` backend.  When NumPy is missing
        the miner logs a warning and falls back to ``"python"``;
        :func:`repro.columnar.require_numpy` is the strict, typed
        (:class:`repro.columnar.ColumnarUnavailableError`) probe.
    """

    #: The default transversal algorithm (the layered kernel; see
    #: :mod:`repro.hypergraph.kernel` and ``docs/algorithms.md``).
    DEFAULT_TRANSVERSAL = "kernel"

    def __init__(self, agree_algorithm: str = "couples",
                 max_couples: Optional[int] = None,
                 transversal_method: Optional[str] = None,
                 transversal_algorithm: Optional[str] = None,
                 build_armstrong: str = "real-world",
                 nulls_equal: bool = True,
                 max_lhs_size: Optional[int] = None,
                 cache=None,
                 jobs: int = 1,
                 shard_timeout: Optional[float] = None,
                 mp_context: Optional[str] = None,
                 pool_mode: str = "persistent",
                 shm: Optional[bool] = None,
                 pool: Optional[PersistentPool] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 progress: Optional[ProgressCallback] = None,
                 backend: str = "python"):
        if build_armstrong not in ("real-world", "classical", "none", "strict"):
            raise ReproError(
                f"build_armstrong must be 'real-world', 'classical', "
                f"'none' or 'strict'; got {build_armstrong!r}"
            )
        if (transversal_method is not None
                and transversal_algorithm is not None
                and transversal_method != transversal_algorithm):
            raise ReproError(
                f"transversal_method={transversal_method!r} and "
                f"transversal_algorithm={transversal_algorithm!r} conflict; "
                f"pass only one (they are aliases)"
            )
        if backend not in ("python", "columnar"):
            raise ReproError(
                f"backend must be 'python' or 'columnar'; got {backend!r}"
            )
        if backend == "columnar":
            from repro.columnar import numpy_available

            if not numpy_available():
                logger.warning(
                    "backend='columnar' needs NumPy; falling back to the "
                    "pure-Python backend (install the repro[fast] extra)"
                )
                backend = "python"
        self.backend = backend
        self.agree_algorithm = agree_algorithm
        self.max_couples = max_couples
        # `transversal_method` is the historical name of the option and
        # doubles as the attribute the cache fingerprint reads.
        self.transversal_method = (
            transversal_algorithm if transversal_algorithm is not None
            else transversal_method if transversal_method is not None
            else self.DEFAULT_TRANSVERSAL
        )
        self.build_armstrong = build_armstrong
        self.nulls_equal = nulls_equal
        # Optional lhs-size cap for very wide schemas: the transversal
        # search stops at that level, so the output is every minimal FD
        # with |lhs| <= max_lhs_size (sound but incomplete).
        self.max_lhs_size = max_lhs_size
        self.cache = cache
        self.jobs = resolve_jobs(jobs)
        self.shard_timeout = shard_timeout
        # Validate eagerly: a bad --mp-context should fail at
        # construction, not in the middle of a mining run.
        self.mp_context = resolve_start_method(mp_context)
        if pool_mode not in ("persistent", "ephemeral"):
            raise ReproError(
                f"pool_mode must be 'persistent' or 'ephemeral'; "
                f"got {pool_mode!r}"
            )
        self.pool_mode = pool_mode
        self.shm = shm
        if pool is not None and pool.jobs != self.jobs:
            raise ReproError(
                f"external pool has {pool.jobs} worker(s) but the miner "
                f"wants jobs={self.jobs}"
            )
        self._pool = pool
        self._owns_pool = False
        self.tracer = tracer
        self.metrics = metrics
        self.progress = progress
        #: The tracer of the most recent ``run``/``run_on_partitions``
        #: call.  Holds the partial span tree when a phase raised.
        self.last_trace: Optional[Tracer] = None

    @property
    def transversal_algorithm(self) -> str:
        """The configured transversal algorithm (alias of the ctor option)."""
        return self.transversal_method

    def _begin_trace(self) -> Tracer:
        tracer = self.tracer if self.tracer is not None else Tracer()
        self.last_trace = tracer
        return tracer

    def _make_executor(self, tracer: Tracer,
                       metrics: MetricsRegistry) -> Optional[ShardedExecutor]:
        """The run's sharded executor (``None`` on the serial path).

        One executor per run, shared by the agree-set chunks and the
        per-attribute lhs fan-out; ``jobs=1`` keeps every call serial.
        In persistent mode every executor runs on the *miner's* one
        :class:`~repro.parallel.PersistentPool` (built lazily on the
        first pooled map, injected into incremental-append resolution
        too), so repeated ``run()`` calls stop paying pool spin-up.
        """
        if self.jobs <= 1:
            return None
        pool = None
        if self.pool_mode == "persistent":
            if self._pool is None or self._pool.closed:
                self._pool = PersistentPool(
                    self.jobs, mp_context=self.mp_context
                )
                self._owns_pool = True
            pool = self._pool
        return ShardedExecutor(
            jobs=self.jobs, shard_timeout=self.shard_timeout,
            mp_context=self.mp_context, pool=pool,
            pool_mode=self.pool_mode, shm=self.shm,
            tracer=tracer, metrics=metrics, progress=self.progress,
        )

    @property
    def pool(self) -> Optional[PersistentPool]:
        """The miner's persistent worker pool (``None`` until a pooled
        map builds the lazily-owned one, or the injected one)."""
        return self._pool

    def close(self) -> None:
        """Release the owned worker pool (no-op for injected pools and
        serial miners; safe to call repeatedly)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def run(self, relation) -> DepMinerResult:
        """Execute the full pipeline on *relation*.

        *relation* is a :class:`Relation` or — from the streaming ingest
        path — a :class:`repro.columnar.ingest.CodedRelation`.  A coded
        relation feeds the columnar backend directly (no ``Relation`` is
        materialized unless the Armstrong step needs domain values); the
        pure-Python backend materializes it first.

        With a :attr:`cache` configured the run first fingerprints the
        relation and reuses every cached artefact the fingerprint and
        configuration allow (see ``docs/caching.md``); the output is
        identical either way.
        """
        tracer = self._begin_trace()
        metrics = self.metrics if self.metrics is not None else NULL_METRICS
        mark = tracer.mark()

        coded = None if isinstance(relation, Relation) else relation
        attrs = {"width": len(relation.schema), "rows": len(relation),
                 "backend": self.backend}
        if self.cache is not None:
            attrs["cached"] = True
        with tracer.span("depminer.run", **attrs):
            if self.backend == "columnar":
                from repro.columnar.pipeline import run_columnar

                return run_columnar(self, relation, tracer, metrics, mark)
            if coded is not None:
                relation = coded.to_relation()
            if self.cache is not None:
                return self._run_cached(relation, tracer, metrics, mark)
            with tracer.span("strip", phase=True) as strip_span:
                spdb = StrippedPartitionDatabase.from_relation(
                    relation, nulls_equal=self.nulls_equal, metrics=metrics
                )
            logger.debug(
                "stripped %d attributes over %d rows into %d classes "
                "(%.3fs)", len(relation.schema), len(relation),
                spdb.total_classes(), strip_span.duration,
            )
            result = self.run_on_partitions(
                spdb, relation=relation, _tracer=tracer, _mark=mark
            )
        return result

    def _run_cached(self, relation: Relation, tracer: Tracer,
                    metrics: MetricsRegistry, mark: int) -> DepMinerResult:
        """The content-addressed path: reuse the deepest cached artefact.

        Tries the cover bundle first (full hit: only the Armstrong step
        re-runs), then ``ag(r)`` (skips stripping *and* the couple
        sweep), then the stripped partitions (skips the relation scan);
        whatever was recomputed is written back for the next run.
        """
        from repro.cache.artifacts import (
            pack_agree,
            pack_partitions,
            unpack_agree,
            unpack_cover,
            unpack_partitions,
        )
        from repro.cache.codec import guard_digest
        from repro.cache.fingerprint import PipelineKeys, fingerprint_relation

        store = self.cache
        schema = relation.schema
        num_rows = len(relation)
        with tracer.span("cache.fingerprint"):
            keys = PipelineKeys.for_miner(
                fingerprint_relation(relation, self.nulls_equal), self
            )
            guard = guard_digest(schema.names, num_rows)

        with tracer.span("cache.lookup", stage="cover"):
            bundle = store.get("cover", keys.cover, guard, metrics=metrics)
        if bundle is not None:
            agree, max_sets, cmax, lhs_sets, fds, stats = unpack_cover(
                bundle, schema
            )
            metrics.inc("cache.full_hit")
            metrics.gauge("agree.sets", len(agree))
            metrics.gauge("fd.count", len(fds))
            logger.debug(
                "cover cache hit for %s: %d FDs reused", keys.cover,
                len(fds),
            )
            return self._finalize(
                agree, max_sets, cmax, lhs_sets, fds, schema, num_rows,
                relation, stats, tracer, metrics, mark,
            )

        stats: Dict[str, int] = {}
        with tracer.span("cache.lookup", stage="agree"):
            entry = store.get("agree", keys.agree, guard, metrics=metrics)
        if entry is not None:
            agree, stats = unpack_agree(entry)
            metrics.gauge("agree.sets", len(agree))
            executor = self._make_executor(tracer, metrics)
            return self._complete(
                agree, schema, num_rows, relation, stats, tracer, metrics,
                executor, mark, _keys=keys, _guard=guard,
            )

        with tracer.span("cache.lookup", stage="partitions"):
            payload = store.get(
                "partitions", keys.partitions, guard, metrics=metrics
            )
        if payload is not None:
            spdb = unpack_partitions(payload)
        else:
            with tracer.span("strip", phase=True):
                spdb = StrippedPartitionDatabase.from_relation(
                    relation, nulls_equal=self.nulls_equal, metrics=metrics
                )
            store.put(
                "partitions", keys.partitions, guard,
                pack_partitions(spdb), metrics=metrics,
            )
        metrics.gauge("partition.stripped_classes", spdb.total_classes())
        executor = self._make_executor(tracer, metrics)
        agree = self._agree_phase(spdb, tracer, metrics, stats, executor)
        store.put(
            "agree", keys.agree, guard, pack_agree(agree, stats),
            metrics=metrics,
        )
        return self._complete(
            agree, schema, num_rows, relation, stats, tracer, metrics,
            executor, mark, _keys=keys, _guard=guard,
        )

    def run_on_partitions(self, spdb: StrippedPartitionDatabase,
                          relation: Optional[Relation] = None,
                          _tracer: Optional[Tracer] = None,
                          _mark: Optional[int] = None) -> DepMinerResult:
        """Execute steps 1–5 on a pre-built stripped partition database.

        *relation* is only needed for the real-world Armstrong step (its
        values come from the initial relation); passing ``None`` degrades
        ``"real-world"``/``"strict"`` to the classical construction.
        """
        schema = spdb.schema
        tracer = _tracer if _tracer is not None else self._begin_trace()
        mark = _mark if _mark is not None else tracer.mark()
        metrics = self.metrics if self.metrics is not None else NULL_METRICS
        stats: Dict[str, int] = {}

        metrics.gauge("partition.stripped_classes", spdb.total_classes())
        executor = self._make_executor(tracer, metrics)
        agree = self._agree_phase(spdb, tracer, metrics, stats, executor)
        return self._complete(
            agree, schema, spdb.num_rows, relation, stats, tracer, metrics,
            executor, mark,
        )

    def derive_from_agree_sets(self, agree, schema: Schema, num_rows: int,
                               relation: Optional[Relation] = None,
                               stats: Optional[Dict[str, int]] = None,
                               relation_key: Optional[str] = None) -> DepMinerResult:
        """Steps 2–5 from a precomputed ``ag(r)`` (bitmask iterable).

        The entry point of :class:`repro.cache.IncrementalMiner`, which
        merges cached base agree sets with the delta of an append and
        re-derives the (comparatively cheap) cmax/transversal tail.
        When *relation_key* (the relation's content fingerprint) is
        given and a :attr:`cache` is configured, the supplied ``ag(r)``
        and the derived cover are stored under that relation's stage
        keys, so a later cold ``run`` on the same data is a warm hit.
        """
        tracer = self._begin_trace()
        metrics = self.metrics if self.metrics is not None else NULL_METRICS
        mark = tracer.mark()
        agree = set(agree)
        stats = dict(stats) if stats else {}
        stats["num_agree_sets"] = len(agree)
        with tracer.span("depminer.derive", width=len(schema),
                         rows=num_rows):
            metrics.gauge("agree.sets", len(agree))
            executor = self._make_executor(tracer, metrics)
            keys = guard = None
            if self.cache is not None and relation_key is not None:
                from repro.cache.artifacts import pack_agree
                from repro.cache.codec import guard_digest
                from repro.cache.fingerprint import PipelineKeys

                keys = PipelineKeys.for_miner(relation_key, self)
                guard = guard_digest(schema.names, num_rows)
                self.cache.put(
                    "agree", keys.agree, guard, pack_agree(agree, stats),
                    metrics=metrics,
                )
            return self._complete(
                agree, schema, num_rows, relation, stats, tracer, metrics,
                executor, mark, _keys=keys, _guard=guard,
            )

    def _agree_phase(self, spdb: StrippedPartitionDatabase, tracer: Tracer,
                     metrics: MetricsRegistry, stats: Dict[str, int],
                     executor: Optional[ShardedExecutor]):
        """Step 1: ``ag(r)`` from the stripped partitions (serial/sharded)."""
        with tracer.span("agree_sets", phase=True,
                         algorithm=self.agree_algorithm,
                         jobs=self.jobs) as agree_span:
            mc = spdb.maximal_classes()
            stats["num_maximal_classes"] = len(mc)
            stats["largest_maximal_class"] = max(
                (len(cls) for cls in mc), default=0
            )
            metrics.gauge("agree.maximal_classes", len(mc))
            if executor is not None and \
                    self.agree_algorithm in ("couples", "identifiers"):
                from repro.parallel.shards import parallel_agree_sets

                agree = parallel_agree_sets(
                    spdb, executor, algorithm=self.agree_algorithm,
                    max_couples=self.max_couples, mc=mc, stats=stats,
                )
            else:
                if executor is not None:
                    logger.debug(
                        "agree algorithm %r has no sharded path; running "
                        "serial (lhs still shards)", self.agree_algorithm,
                    )
                agree = agree_sets(
                    spdb,
                    algorithm=self.agree_algorithm,
                    max_couples=self.max_couples,
                    mc=mc,
                    stats=stats,
                    metrics=metrics,
                    progress=self.progress,
                )
            stats["num_agree_sets"] = len(agree)
            metrics.gauge("agree.sets", len(agree))
        logger.debug(
            "agree sets: %d from %d couples across %d maximal classes "
            "(%s, %.3fs)", len(agree), stats.get("num_couples", 0),
            stats["num_maximal_classes"], self.agree_algorithm,
            agree_span.duration,
        )
        return agree

    def _complete(self, agree, schema: Schema, num_rows: int,
                  relation: Optional[Relation], stats: Dict[str, int],
                  tracer: Tracer, metrics: MetricsRegistry,
                  executor: Optional[ShardedExecutor], mark: int,
                  _keys=None, _guard: Optional[bytes] = None) -> DepMinerResult:
        """Steps 2–4 (cmax, lhs, FD output) plus the cache write-back."""
        if executor is not None:
            # Fused parallel tail: each worker derives max(dep(r), A),
            # complements it and searches the transversals for its own
            # RHS attribute.  The cmax phase span then covers only the
            # parent-side shard preparation; the per-attribute work is
            # accounted inside the lhs phase (see docs/parallel.md).
            from repro.parallel.shards import parallel_cmax_lhs

            with tracer.span("cmax", phase=True, jobs=self.jobs):
                agree_list = sorted(agree)
            with tracer.span("lhs", phase=True,
                             method=self.transversal_method,
                             jobs=self.jobs, fused_cmax=True) as lhs_span:
                max_sets, cmax, lhs_sets = parallel_cmax_lhs(
                    agree_list, schema, executor,
                    method=self.transversal_method,
                    max_size=self.max_lhs_size,
                )
                metrics.gauge(
                    "cmax.edges", sum(len(edges) for edges in cmax.values())
                )
        else:
            with tracer.span("cmax", phase=True):
                with tracer.span("maximal_sets"):
                    max_sets = maximal_sets(agree, schema)
                with tracer.span("complements"):
                    cmax = complement_maximal_sets(max_sets, schema)
                metrics.gauge(
                    "cmax.edges", sum(len(edges) for edges in cmax.values())
                )

            with tracer.span("lhs", phase=True,
                             method=self.transversal_method) as lhs_span:
                lhs_sets = left_hand_sides(
                    cmax, schema, method=self.transversal_method,
                    max_size=self.max_lhs_size,
                    metrics=metrics, progress=self.progress,
                    tracer=tracer,
                )
        logger.debug(
            "lhs families computed via %s (%.3fs)",
            self.transversal_method, lhs_span.duration,
        )

        with tracer.span("fd_output", phase=True):
            fds = fd_output(lhs_sets, schema)
            metrics.gauge("fd.count", len(fds))
        logger.info(
            "mined %d minimal FDs over %d attributes and %d rows "
            "(%.3fs total so far)", len(fds), len(schema),
            num_rows, sum(tracer.phase_seconds(mark).values()),
        )

        if _keys is not None and self.cache is not None:
            from repro.cache.artifacts import pack_cover

            self.cache.put(
                "cover", _keys.cover, _guard,
                pack_cover(agree, max_sets, cmax, lhs_sets, fds, stats),
                metrics=metrics,
            )
        return self._finalize(
            agree, max_sets, cmax, lhs_sets, fds, schema, num_rows,
            relation, stats, tracer, metrics, mark,
        )

    def _finalize(self, agree, max_sets, cmax, lhs_sets, fds,
                  schema: Schema, num_rows: int,
                  relation: Optional[Relation], stats: Dict[str, int],
                  tracer: Tracer, metrics: MetricsRegistry,
                  mark: int) -> DepMinerResult:
        """Step 5 (Armstrong) and result assembly — runs even on a full
        cover hit, since Armstrong tuples draw values from *relation*."""
        union = max_set_union(max_sets)
        armstrong = None
        classical = None
        with tracer.span("armstrong", phase=True, mode=self.build_armstrong):
            if self.build_armstrong != "none":
                if self.backend == "columnar":
                    armstrong, classical = self._armstrong_columnar(
                        schema, union, relation, tracer
                    )
                else:
                    classical = classical_armstrong(schema, union)
                    if self.build_armstrong in ("real-world", "strict"):
                        if relation is None:
                            if self.build_armstrong == "strict":
                                raise ReproError(
                                    "strict real-world Armstrong generation "
                                    "needs the initial relation, not just "
                                    "its partitions"
                                )
                        elif self.build_armstrong == "strict" or \
                                real_world_armstrong_exists(relation, union):
                            armstrong = real_world_armstrong(relation, union)
                if armstrong is not None:
                    metrics.gauge("armstrong.tuples", len(armstrong))

        stats["num_fds"] = len(fds)
        stats["num_maximal_sets"] = len(union)
        return DepMinerResult(
            schema=schema,
            num_rows=num_rows,
            agree_sets=agree,
            max_sets=max_sets,
            cmax_sets=cmax,
            lhs_sets=lhs_sets,
            fds=fds,
            max_union=union,
            armstrong=armstrong,
            classical_armstrong=classical,
            phase_seconds=tracer.phase_seconds(mark),
            stats=stats,
            trace=tracer,
        )

    def _armstrong_columnar(self, schema: Schema, union, relation,
                            tracer: Tracer):
        """Step 5 on the columnar backend: the vectorized constructions
        of :mod:`repro.columnar.armstrong`, bit-identical to the
        row-wise ones.  *relation* may be a :class:`Relation`, a
        :class:`repro.columnar.ingest.CodedRelation` (domains read off
        the code matrix, no materialization), or ``None``.
        """
        from repro.columnar.armstrong import (
            classical_armstrong_columnar,
            existence_deficits,
            real_world_armstrong_columnar,
        )

        armstrong = None
        with tracer.span("armstrong.build", construction="classical"):
            classical = classical_armstrong_columnar(schema, union)
        if self.build_armstrong in ("real-world", "strict"):
            if relation is None:
                if self.build_armstrong == "strict":
                    raise ReproError(
                        "strict real-world Armstrong generation needs "
                        "the initial relation, not just its partitions"
                    )
            elif self.build_armstrong == "strict" or \
                    not existence_deficits(relation, union):
                with tracer.span("armstrong.build",
                                 construction="real-world"):
                    armstrong = real_world_armstrong_columnar(
                        relation, union
                    )
        return armstrong, classical


def discover(relation: Relation, **options) -> DepMinerResult:
    """One-call Dep-Miner: ``discover(r)`` runs the full pipeline.

    Keyword options are forwarded to :class:`DepMiner`.
    """
    return DepMiner(**options).run(relation)


def discover_fds(relation: Relation, **options) -> List[FD]:
    """Convenience wrapper returning only the minimal non-trivial FDs."""
    options.setdefault("build_armstrong", "none")
    return DepMiner(**options).run(relation).fds
