"""Maximal sets and their complements (section 3.2, algorithm ``CMAX_SET``).

For an attribute ``A``, ``max(dep(r), A)`` is the family of maximal
attribute sets *not* determining ``A``.  Lemma 3 characterises it directly
from the agree sets:

    ``max(dep(r), A) = Max⊆ { X ∈ ag(r) : A ∉ X }``

The empty agree set participates like any other candidate: it is the
maximal non-determining set for ``A`` precisely when ``A`` is not constant
yet no non-empty agree set avoids ``A`` (e.g. two tuples disagreeing on
everything).  When *no* candidate exists at all, ``A`` is constant in the
relation and ``max(dep(r), A) = ∅``, which downstream yields the FD
``∅ → A``.

``cmax(dep(r), A)`` is the edge-wise complement ``{R \\ X}``; it is a
simple hypergraph whose minimal transversals are the lhs of the minimal
FDs with rhs ``A`` (section 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core.attributes import Schema
from repro.hypergraph.hypergraph import maximize_sets

__all__ = [
    "maximal_sets",
    "maximal_sets_for_attribute",
    "complement_maximal_sets",
    "max_set_union",
    "disagree_sets",
    "cmax_from_disagree_sets",
]


def maximal_sets_for_attribute(agree: Iterable[int],
                               attribute: int) -> List[int]:
    """``max(dep(r), A)`` for one attribute, from ``ag(r)`` bitmasks.

    The independent per-attribute unit of Lemma 3; :func:`maximal_sets`
    is this helper over every attribute, and the parallel execution
    layer fans exactly this computation out per RHS attribute.
    """
    bit = 1 << attribute
    candidates = [mask for mask in agree if not mask & bit]
    return maximize_sets(candidates)


def maximal_sets(agree: Iterable[int], schema: Schema) -> Dict[int, List[int]]:
    """``max(dep(r), A)`` for every attribute, from ``ag(r)`` bitmasks.

    Returns a mapping ``attribute index → sorted list of maximal masks``.
    An attribute mapped to an empty list is constant in the relation.
    """
    agree = list(agree)
    return {
        attribute: maximal_sets_for_attribute(agree, attribute)
        for attribute in range(len(schema))
    }


def complement_maximal_sets(max_sets: Dict[int, List[int]],
                            schema: Schema) -> Dict[int, List[int]]:
    """``cmax(dep(r), A) = {R \\ X : X ∈ max(dep(r), A)}`` per attribute.

    The complement of an antichain of maximal sets is an antichain of
    minimal sets, i.e. a simple hypergraph — no extra minimisation is
    needed.  Note every edge contains ``A`` itself (since ``A ∉ X``).
    """
    universe = schema.universe_mask
    return {
        attribute: sorted(universe & ~mask for mask in masks)
        for attribute, masks in max_sets.items()
    }


def disagree_sets(agree: Iterable[int], schema: Schema) -> List[int]:
    """``d(r) = {R \\ X : X ∈ ag(r)}`` — the complements of the agree sets.

    Figure 1 of the paper shows this alternative route (the upper
    branch): agree sets → complement/R → disagree sets → complements of
    maximal sets.  Footnote 3 credits [MR94a] with the corresponding
    characterisation.
    """
    universe = schema.universe_mask
    return sorted({universe & ~mask for mask in agree})


def cmax_from_disagree_sets(disagree: Iterable[int],
                            schema: Schema) -> Dict[int, List[int]]:
    """``cmax(dep(r), A) = Min⊆ {D ∈ d(r) : A ∈ D}`` per attribute.

    The dual of Lemma 3: complementation maps the *maximal* agree sets
    avoiding ``A`` to the *minimal* disagree sets containing ``A``.
    Extensionally equal to composing :func:`maximal_sets` with
    :func:`complement_maximal_sets` (asserted by the tests); provided so
    both branches of the paper's Figure 1 exist in code.
    """
    from repro.hypergraph.hypergraph import minimize_sets

    disagree = list(disagree)
    result: Dict[int, List[int]] = {}
    for attribute in range(len(schema)):
        bit = 1 << attribute
        candidates = [mask for mask in disagree if mask & bit]
        result[attribute] = minimize_sets(candidates)
    return result


def max_set_union(max_sets: Dict[int, List[int]]) -> List[int]:
    """``MAX(dep(r)) = ⋃_A max(dep(r), A)`` with duplicates removed.

    The same maximal set is typically maximal for several attributes; the
    union keeps it once.  Sorted for determinism.  ``MAX(dep(r))`` equals
    ``GEN(dep(r))``, the intersection generators of the closed-set family
    [MR86, MR94b], which is what the Armstrong construction consumes.
    """
    union: Set[int] = set()
    for masks in max_sets.values():
        union.update(masks)
    return sorted(union)
