"""Left-hand sides of minimal FDs (section 3.3, algorithm ``LEFT_HAND_SIDE``).

``lhs(dep(r), A)`` — the minimal attribute sets determining ``A`` — equals
the set of minimal transversals of the simple hypergraph
``cmax(dep(r), A)`` (section 2).  The paper computes them with a levelwise
algorithm adapting Apriori-gen; that algorithm lives in
:mod:`repro.hypergraph.transversals` and is shared with the TANE→Armstrong
extension (which needs the inverse direction ``Tr(lhs) = cmax``).

Corner cases, both exercised by the tests:

- ``cmax(dep(r), A) = ∅`` (no edge): ``A`` is constant, the only minimal
  transversal is ``∅`` and the minimal FD is ``∅ → A``.
- ``{A}`` itself always appears in ``lhs(dep(r), A)`` when ``A`` is not
  constant (every edge of ``cmax`` contains ``A``); ``FD_OUTPUT`` filters
  the trivial ``A → A`` (Algorithm 6).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.attributes import AttributeSet, Schema
from repro.fd.fd import FD, sort_fds
from repro.hypergraph.transversals import minimal_transversals
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressCallback, emit_progress

__all__ = ["left_hand_sides", "fd_output", "SIZE_BOUNDED_METHODS"]

#: The transversal algorithms that honour ``max_size`` (levelwise
#: truncation); Berge and the DFS enumerate complete families only.
SIZE_BOUNDED_METHODS = ("levelwise", "kernel", "vectorized")


def left_hand_sides(cmax: Dict[int, List[int]], schema: Schema,
                    method: str = "levelwise",
                    max_size: int = None,
                    metrics: Optional[MetricsRegistry] = None,
                    progress: Optional[ProgressCallback] = None,
                    tracer=None) -> Dict[int, List[int]]:
    """``lhs(dep(r), A)`` for every attribute, as bitmask lists.

    *cmax* maps each attribute index to the edges of ``cmax(dep(r), A)``;
    *method* selects the transversal algorithm (``"kernel"`` is the
    reduction + incremental-coverage kernel DepMiner defaults to,
    ``"vectorized"`` its NumPy batch backend, ``"levelwise"`` the
    paper's Algorithm 5, ``"berge"`` the sequential baseline, ``"dfs"``
    the FastFDs-style search).  *max_size* bounds the lhs size and is
    only supported by the size-bounded methods
    (:data:`SIZE_BOUNDED_METHODS`): the result is then every minimal lhs
    of at most that many attributes (sound but incomplete — the usual
    wide-schema trade-off).

    *metrics* receives ``transversal.level_size`` /
    ``lhs.candidates_generated`` from the levelwise searches (plus the
    ``transversal.*`` reduction counters from the kernel); *progress*
    reports one ``"lhs.attributes"`` step per attribute (any method) and
    per-level steps inside the levelwise searches.  *tracer* optionally
    wraps each attribute's kernel reduction in a ``transversal.reduce``
    span (kernel/vectorized methods only).
    """
    width = len(schema)
    if max_size is not None and method not in SIZE_BOUNDED_METHODS:
        from repro.errors import ReproError

        raise ReproError(
            "max_size is only supported by the levelwise, kernel and "
            "vectorized methods"
        )
    result: Dict[int, List[int]] = {}
    for done, (attribute, edges) in enumerate(cmax.items()):
        if progress is not None:
            emit_progress(progress, "lhs.attributes", done, len(cmax))
        if method == "levelwise":
            from repro.hypergraph.transversals import (
                minimal_transversals_levelwise,
            )

            result[attribute] = minimal_transversals_levelwise(
                edges, width, max_size=max_size,
                metrics=metrics, progress=progress,
            )
        elif method in ("kernel", "vectorized"):
            result[attribute] = _kernel_lhs(
                edges, width, attribute, method, max_size,
                metrics, progress, tracer,
            )
        else:
            result[attribute] = minimal_transversals(
                edges, width, method=method
            )
    if progress is not None and cmax:
        emit_progress(progress, "lhs.attributes", len(cmax), len(cmax))
    return result


def _kernel_lhs(edges: List[int], width: int, attribute: int, method: str,
                max_size, metrics, progress, tracer) -> List[int]:
    """One attribute's transversal search through the layered kernel."""
    from repro.hypergraph.kernel import minimal_transversals_kernel

    backend = "vectorized" if method == "vectorized" else "python"
    return minimal_transversals_kernel(
        edges, width, max_size=max_size, metrics=metrics,
        progress=progress, backend=backend, tracer=tracer,
    )


def fd_output(lhs_sets: Dict[int, List[int]], schema: Schema) -> List[FD]:
    """Algorithm 6 (``FD_OUTPUT``): minimal non-trivial FDs from lhs sets.

    Emits ``X → A`` for every ``X ∈ lhs(dep(r), A)`` except the trivial
    ``{A} → A``.  (Any other lhs containing ``A`` cannot occur: minimal
    transversals of ``cmax(dep(r), A)`` that contain ``A`` are exactly
    ``{A}``, because ``A`` alone already hits every edge.)
    """
    fds: List[FD] = []
    for attribute, masks in lhs_sets.items():
        bit = 1 << attribute
        for mask in masks:
            if mask == bit:
                continue
            fds.append(FD(AttributeSet(schema, mask), attribute))
    return sort_fds(fds)
