"""Schemas and attribute sets.

The paper implements attribute sets as *bit vectors* "to provide set
operations in constant time" (section 5).  We mirror that design: a
:class:`Schema` assigns each attribute a bit position, and an
:class:`AttributeSet` is an immutable wrapper around a Python ``int``
bitmask.  CPython's arbitrary-precision integers give branch-free set
algebra (``|``, ``&``, ``-`` as ``& ~``) that is both faster and more
memory-compact than ``frozenset`` for the schema widths the paper uses
(10–60 attributes).

Inner loops of the mining algorithms operate on raw ``int`` masks for
speed; :class:`AttributeSet` is the user-facing, schema-aware view used at
API boundaries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple, Union

from repro.errors import SchemaError, SchemaMismatchError

__all__ = ["Schema", "AttributeSet", "iter_bits", "popcount", "mask_of_indices"]


if hasattr(int, "bit_count"):  # Python >= 3.10
    def popcount(mask: int) -> int:
        """Number of set bits in *mask* (cardinality of the attribute set)."""
        return mask.bit_count()
else:
    def popcount(mask: int) -> int:
        """Number of set bits in *mask* (cardinality of the attribute set)."""
        return bin(mask).count("1")


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of *mask* in increasing order.

    >>> list(iter_bits(0b1011))
    [0, 1, 3]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of_indices(indices: Iterable[int]) -> int:
    """Build a bitmask from an iterable of bit positions."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


class Schema:
    """An ordered, immutable list of attribute names.

    Each attribute receives the bit position equal to its index, so the
    schema defines the mapping between human-readable names and the
    bitmasks used everywhere else.

    >>> schema = Schema(["empnum", "depnum", "year"])
    >>> schema.index_of("year")
    2
    >>> len(schema)
    3
    """

    __slots__ = ("_names", "_index", "_universe_mask", "_hash")

    def __init__(self, names: Sequence[str]):
        names = tuple(str(name) for name in names)
        if not names:
            raise SchemaError("a schema needs at least one attribute")
        seen = set()
        for name in names:
            if not name:
                raise SchemaError("attribute names must be non-empty strings")
            if name in seen:
                raise SchemaError(f"duplicate attribute name: {name!r}")
            seen.add(name)
        self._names = names
        self._index = {name: i for i, name in enumerate(names)}
        self._universe_mask = (1 << len(names)) - 1
        self._hash = hash(names)

    @classmethod
    def of_width(cls, width: int, prefix: str = "") -> "Schema":
        """Build a schema of *width* generated attribute names.

        Widths up to 26 use single letters ``A..Z`` (matching the paper's
        examples); wider schemas use ``A1, A2, ...``.

        >>> Schema.of_width(3).names
        ('A', 'B', 'C')
        """
        if width < 1:
            raise SchemaError("schema width must be positive")
        if prefix:
            names = [f"{prefix}{i + 1}" for i in range(width)]
        elif width <= 26:
            names = [chr(ord("A") + i) for i in range(width)]
        else:
            names = [f"A{i + 1}" for i in range(width)]
        return cls(names)

    @property
    def names(self) -> Tuple[str, ...]:
        """The attribute names, in bit order."""
        return self._names

    @property
    def universe_mask(self) -> int:
        """Bitmask with every attribute set (the set ``R`` of the paper)."""
        return self._universe_mask

    def index_of(self, name: str) -> int:
        """Bit position of *name*; raises :class:`SchemaError` if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {list(self._names)}"
            ) from None

    def name_of(self, index: int) -> str:
        """Attribute name at bit position *index*."""
        if not 0 <= index < len(self._names):
            raise SchemaError(
                f"attribute index {index} out of range for width {len(self._names)}"
            )
        return self._names[index]

    def mask_of(self, attributes: Union[str, int, Iterable]) -> int:
        """Bitmask of *attributes* given as names, indices, or a mix.

        Accepts a single name, a single index, an :class:`AttributeSet`,
        or any iterable of names/indices.
        """
        if isinstance(attributes, AttributeSet):
            if attributes.schema != self:
                raise SchemaMismatchError(
                    "attribute set belongs to a different schema"
                )
            return attributes.mask
        if isinstance(attributes, str):
            return 1 << self.index_of(attributes)
        if isinstance(attributes, int):
            self.name_of(attributes)  # bounds check
            return 1 << attributes
        mask = 0
        for item in attributes:
            mask |= self.mask_of(item)
        return mask

    def attribute_set(self, attributes: Union[str, int, Iterable] = ()) -> "AttributeSet":
        """Build an :class:`AttributeSet` over this schema.

        >>> Schema.of_width(4).attribute_set("AC").names
        Traceback (most recent call last):
        ...
        repro.errors.SchemaError: unknown attribute 'AC'; schema has ['A', 'B', 'C', 'D']
        >>> Schema.of_width(4).attribute_set(["A", "C"]).names
        ('A', 'C')
        """
        return AttributeSet(self, self.mask_of(attributes))

    def from_mask(self, mask: int) -> "AttributeSet":
        """Wrap a raw bitmask into an :class:`AttributeSet`."""
        return AttributeSet(self, mask)

    def universe(self) -> "AttributeSet":
        """The full attribute set ``R``."""
        return AttributeSet(self, self._universe_mask)

    def empty(self) -> "AttributeSet":
        """The empty attribute set."""
        return AttributeSet(self, 0)

    def singletons(self) -> Iterator["AttributeSet"]:
        """Yield each single-attribute set, in schema order."""
        for i in range(len(self._names)):
            yield AttributeSet(self, 1 << i)

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Schema) and self._names == other._names

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Schema({list(self._names)!r})"


class AttributeSet:
    """An immutable set of attributes over a fixed :class:`Schema`.

    Supports the usual set algebra through operators, mirroring
    ``frozenset`` semantics but backed by a bitmask:

    >>> schema = Schema.of_width(5)
    >>> x = schema.attribute_set("ABD")  # doctest: +SKIP
    >>> x = schema.attribute_set(["A", "B", "D"])
    >>> y = schema.attribute_set(["B", "C"])
    >>> sorted((x | y).names)
    ['A', 'B', 'C', 'D']
    >>> (x & y).names
    ('B',)
    >>> (x - y).names
    ('A', 'D')
    >>> x.complement().names
    ('C', 'E')
    """

    __slots__ = ("_schema", "_mask")

    def __init__(self, schema: Schema, mask: int):
        if mask < 0 or mask & ~schema.universe_mask:
            raise SchemaError(
                f"mask {bin(mask)} has bits outside schema width {len(schema)}"
            )
        self._schema = schema
        self._mask = mask

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def mask(self) -> int:
        """The underlying bitmask."""
        return self._mask

    @property
    def names(self) -> Tuple[str, ...]:
        """The member attribute names in schema order."""
        name_of = self._schema.name_of
        return tuple(name_of(i) for i in iter_bits(self._mask))

    def indices(self) -> Tuple[int, ...]:
        """The member bit positions in increasing order."""
        return tuple(iter_bits(self._mask))

    def is_empty(self) -> bool:
        return self._mask == 0

    def complement(self) -> "AttributeSet":
        """``R \\ X`` — the complement with respect to the schema."""
        return AttributeSet(
            self._schema, self._schema.universe_mask & ~self._mask
        )

    def _coerce_mask(self, other: object) -> int:
        if isinstance(other, AttributeSet):
            if other._schema != self._schema:
                raise SchemaMismatchError(
                    "cannot combine attribute sets from different schemas"
                )
            return other._mask
        return self._schema.mask_of(other)  # type: ignore[arg-type]

    # -- set algebra ------------------------------------------------------

    def union(self, other) -> "AttributeSet":
        return AttributeSet(self._schema, self._mask | self._coerce_mask(other))

    def intersection(self, other) -> "AttributeSet":
        return AttributeSet(self._schema, self._mask & self._coerce_mask(other))

    def difference(self, other) -> "AttributeSet":
        return AttributeSet(self._schema, self._mask & ~self._coerce_mask(other))

    def symmetric_difference(self, other) -> "AttributeSet":
        return AttributeSet(self._schema, self._mask ^ self._coerce_mask(other))

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    def issubset(self, other) -> bool:
        other_mask = self._coerce_mask(other)
        return self._mask & ~other_mask == 0

    def issuperset(self, other) -> bool:
        other_mask = self._coerce_mask(other)
        return other_mask & ~self._mask == 0

    def is_proper_subset(self, other) -> bool:
        other_mask = self._coerce_mask(other)
        return self._mask != other_mask and self._mask & ~other_mask == 0

    def __le__(self, other) -> bool:
        return self.issubset(other)

    def __lt__(self, other) -> bool:
        return self.is_proper_subset(other)

    def __ge__(self, other) -> bool:
        return self.issuperset(other)

    def __gt__(self, other) -> bool:
        other_mask = self._coerce_mask(other)
        return self._mask != other_mask and other_mask & ~self._mask == 0

    def isdisjoint(self, other) -> bool:
        return self._mask & self._coerce_mask(other) == 0

    def add(self, attribute: Union[str, int]) -> "AttributeSet":
        """Return a new set with *attribute* added (sets are immutable)."""
        return AttributeSet(
            self._schema, self._mask | self._schema.mask_of(attribute)
        )

    def remove(self, attribute: Union[str, int]) -> "AttributeSet":
        """Return a new set with *attribute* removed."""
        return AttributeSet(
            self._schema, self._mask & ~self._schema.mask_of(attribute)
        )

    # -- container protocol ----------------------------------------------

    def __contains__(self, attribute: object) -> bool:
        if isinstance(attribute, str) and attribute not in self._schema:
            return False
        try:
            return bool(self._mask & self._schema.mask_of(attribute))  # type: ignore[arg-type]
        except SchemaError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __len__(self) -> int:
        return popcount(self._mask)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AttributeSet):
            return self._schema == other._schema and self._mask == other._mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._schema, self._mask))

    def __bool__(self) -> bool:
        return self._mask != 0

    def __repr__(self) -> str:
        if not self._mask:
            return "{}"
        return "{" + ", ".join(self.names) + "}"

    def compact(self) -> str:
        """Compact string such as ``BDE`` — the paper's notation.

        Joins names with no separator when every name is a single
        character, otherwise with commas.
        """
        names = self.names
        if all(len(name) == 1 for name in names):
            return "".join(names) if names else "∅"
        return ",".join(names) if names else "∅"
