"""Armstrong relations (section 4 of the paper).

An *Armstrong relation* for a set ``F`` of FDs satisfies exactly the
dependencies implied by ``F`` — it witnesses both every FD that holds and
every FD that fails.  [BDFS84] characterise them through agree sets:
``r`` is Armstrong for ``F`` iff ``GEN(F) ⊆ ag(r) ⊆ CL(F)``, and
``GEN(F) = MAX(F)``, the maximal sets.

Two constructions are provided:

- :func:`classical_armstrong` — the synthetic-value construction of
  [BDFS84, MR86]: one row of zeros for ``X0 = R`` plus, for each maximal
  set ``Xi``, a row that copies the zeros on ``Xi`` and writes the fresh
  value ``i`` elsewhere (equation (1) in the paper).

- :func:`real_world_armstrong` — the paper's contribution: same shape,
  but every value is drawn from the *initial relation's* active domain
  (Definition 1), so the result reads like a genuine sample of the data.
  Existence requires each attribute to carry enough distinct values
  (Proposition 1): ``|πA(r)| ≥ |{X ∈ MAX(dep(r)) : A ∉ X}| + 1``.

Both produce ``|MAX(dep(r))| + 1`` tuples, which the evaluation section
shows is typically 2–4 orders of magnitude smaller than the input.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.attributes import Schema
from repro.core.relation import Relation
from repro.errors import ArmstrongExistenceError

__all__ = [
    "classical_armstrong",
    "real_world_armstrong",
    "real_world_existence_deficits",
    "real_world_armstrong_exists",
    "armstrong_size",
    "minimum_armstrong_size_bounds",
    "is_armstrong_for",
]


def armstrong_size(max_union: Sequence[int]) -> int:
    """``|MAX(dep(r))| + 1`` — the number of tuples both constructions emit."""
    return len(max_union) + 1


def minimum_armstrong_size_bounds(max_union: Sequence[int]) -> Tuple[int, int]:
    """Bounds on the size of a *smallest possible* Armstrong relation.

    [BDFS84]: every Armstrong relation must witness each of the
    ``|GEN| = |MAX|`` generators as the agree set of some tuple pair, so
    with ``n`` tuples ``C(n, 2) ≥ |GEN|`` — the lower bound is the least
    ``n`` with ``n(n−1)/2 ≥ |GEN|`` (at least 2 whenever something must
    disagree).  The upper bound is the constructive ``|MAX| + 1``.
    Both constructions in this module realise the upper bound; the gap
    (≈ √(2·|GEN|) vs |GEN|+1) is why the paper reports Armstrong sizes
    rather than claiming minimality.
    """
    generators = len(max_union)
    if generators == 0:
        return (1, 1)
    lower = 2
    while lower * (lower - 1) // 2 < generators:
        lower += 1
    return (lower, generators + 1)


def classical_armstrong(schema: Schema, max_union: Sequence[int]) -> Relation:
    """The integer-valued Armstrong relation of [BDFS84, MR86] (eq. (1)).

    Row 0 stands for ``X0 = R`` (all zeros); row ``i ≥ 1`` stands for the
    i-th maximal set ``Xi`` and reads 0 on ``Xi``'s attributes, ``i``
    elsewhere.  Agree sets of the result are exactly ``{Xi}`` plus the
    pairwise intersections of maximal sets — i.e. ``GEN ⊆ ag ⊆ CL``.
    """
    width = len(schema)
    rows: List[List[int]] = [[0] * width]
    for i, max_mask in enumerate(max_union, start=1):
        rows.append(
            [0 if max_mask & (1 << a) else i for a in range(width)]
        )
    return Relation.from_rows(schema, rows)


def real_world_existence_deficits(relation: Relation,
                                  max_union: Sequence[int]) -> Dict[str, int]:
    """Check Proposition 1; return the per-attribute value deficits.

    For each attribute ``A`` the construction needs
    ``|{X ∈ MAX : A ∉ X}| + 1`` distinct values; the returned mapping
    holds ``needed − available`` for every attribute that falls short
    (empty mapping ⇔ a real-world Armstrong relation exists).
    """
    deficits: Dict[str, int] = {}
    for index, name in enumerate(relation.schema.names):
        bit = 1 << index
        needed = sum(1 for mask in max_union if not mask & bit) + 1
        available = len(set(relation.column(index)))
        if available < needed:
            deficits[name] = needed - available
    return deficits


def real_world_armstrong_exists(relation: Relation,
                                max_union: Sequence[int]) -> bool:
    """Proposition 1 as a boolean."""
    return not real_world_existence_deficits(relation, max_union)


def is_armstrong_for(candidate: Relation, max_union: Sequence[int]) -> bool:
    """Is *candidate* an Armstrong relation for the FDs whose maximal
    sets are *max_union*?

    Uses the [BDFS84] characterisation directly —
    ``GEN(F) ⊆ ag(candidate) ⊆ CL(F)`` with ``GEN(F) = MAX(F)`` — so no
    FD re-mining is needed: each agree set must be an intersection of
    maximal sets (closed), and every maximal set must appear.
    """
    from repro.core.agree_sets import naive_agree_sets

    universe = candidate.schema.universe_mask
    agree = naive_agree_sets(candidate)
    agree.discard(universe)  # duplicate rows agree on R; R is closed
    required = set(max_union)
    if not required <= agree:
        return False
    for mask in agree:
        meet = universe
        for max_mask in max_union:
            if mask & max_mask == mask:
                meet &= max_mask
        if meet != mask:
            return False
    return True


def real_world_armstrong(relation: Relation,
                         max_union: Sequence[int]) -> Relation:
    """Build the real-world Armstrong relation of Definition 1 / eq. (2).

    Row 0 (for ``X0 = R``) uses each attribute's first distinct value
    ``vA0``; the row of maximal set ``Xi`` reuses ``vA0`` on ``Xi``'s
    attributes and a *fresh, previously unused* distinct value elsewhere.
    (Equation (2) writes the fresh value as ``vAi``; indexing by a
    per-attribute counter over the rows that actually need fresh values is
    what makes Proposition 1's bound exact, and reproduces the worked
    example of section 4.)

    Raises :class:`ArmstrongExistenceError` when Proposition 1 fails.
    """
    deficits = real_world_existence_deficits(relation, max_union)
    if deficits:
        details = ", ".join(
            f"{name} (short by {missing})"
            for name, missing in sorted(deficits.items())
        )
        raise ArmstrongExistenceError(
            "no real-world Armstrong relation exists: attributes with too "
            f"few distinct values: {details}",
            failing_attributes=sorted(deficits),
        )
    schema = relation.schema
    width = len(schema)
    domains = [relation.distinct_values(a) for a in range(width)]
    next_fresh = [1] * width  # per-attribute counter over fresh values
    rows: List[List[object]] = [[domains[a][0] for a in range(width)]]
    for max_mask in max_union:
        row: List[object] = []
        for a in range(width):
            if max_mask & (1 << a):
                row.append(domains[a][0])
            else:
                row.append(domains[a][next_fresh[a]])
                next_fresh[a] += 1
        rows.append(row)
    return Relation.from_rows(schema, rows)
