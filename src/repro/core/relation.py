"""Relations (relation instances) over a :class:`~repro.core.attributes.Schema`.

A :class:`Relation` is a finite multiset of tuples.  We store it
column-oriented: one Python list per attribute.  Column orientation is the
natural layout for every algorithm in the paper — partitions, agree sets
and projections all scan single columns — and matches how the original
system streamed columns out of the DBMS through ODBC.

Tuples are identified by their 0-based row index ("a positive integer
unique to t", section 3.1).  Values may be any hashable Python objects;
equality is plain ``==`` (two ``None`` values agree, like SQL ``GROUP BY``
semantics rather than SQL ``=`` semantics, which is what partition-based
FD miners use in practice).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.attributes import AttributeSet, Schema, iter_bits
from repro.errors import RelationError, SchemaMismatchError

__all__ = ["Relation"]


class Relation:
    """An immutable relation instance (set/multiset of tuples).

    >>> r = Relation.from_rows(Schema(["a", "b"]), [(1, "x"), (2, "y")])
    >>> len(r)
    2
    >>> r.row(1)
    (2, 'y')
    """

    __slots__ = ("_schema", "_columns", "_size")

    def __init__(self, schema: Schema, columns: Sequence[Sequence[Any]]):
        if len(columns) != len(schema):
            raise RelationError(
                f"expected {len(schema)} columns, got {len(columns)}"
            )
        columns = [list(column) for column in columns]
        sizes = {len(column) for column in columns}
        if len(sizes) > 1:
            raise RelationError(f"ragged columns: lengths {sorted(sizes)}")
        self._schema = schema
        self._columns = columns
        self._size = len(columns[0]) if columns else 0

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from an iterable of row tuples."""
        columns: List[List[Any]] = [[] for _ in range(len(schema))]
        width = len(schema)
        for row_number, row in enumerate(rows):
            row = tuple(row)
            if len(row) != width:
                raise RelationError(
                    f"row {row_number} has arity {len(row)}, schema has {width}"
                )
            for column, value in zip(columns, row):
                column.append(value)
        return cls(schema, columns)

    @classmethod
    def from_columns(cls, schema: Schema, columns: Sequence[Sequence[Any]]) -> "Relation":
        """Build a relation from per-attribute value lists."""
        return cls(schema, columns)

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping[str, Any]],
                   schema: Schema = None) -> "Relation":
        """Build a relation from dict rows; the schema defaults to the keys
        of the first row (in insertion order)."""
        rows = list(rows)
        if schema is None:
            if not rows:
                raise RelationError(
                    "cannot infer a schema from an empty sequence of dicts"
                )
            schema = Schema(list(rows[0].keys()))
        try:
            return cls.from_rows(
                schema, ([row[name] for name in schema.names] for row in rows)
            )
        except KeyError as exc:
            raise RelationError(f"row is missing attribute {exc}") from None

    # -- basic accessors ----------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def attributes(self) -> AttributeSet:
        """The full attribute set ``R`` of this relation."""
        return self._schema.universe()

    def __len__(self) -> int:
        return self._size

    def column(self, attribute) -> List[Any]:
        """The list of values of *attribute*, in row order."""
        if isinstance(attribute, int):
            index = attribute
            self._schema.name_of(index)
        else:
            index = self._schema.index_of(attribute)
        return self._columns[index]

    def row(self, index: int) -> Tuple[Any, ...]:
        """The *index*-th tuple."""
        if not 0 <= index < self._size:
            raise RelationError(
                f"row index {index} out of range for relation of size {self._size}"
            )
        return tuple(column[index] for column in self._columns)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over all tuples in row order."""
        return (self.row(i) for i in range(self._size))

    __iter__ = rows

    def restrict(self, row_index: int, attributes: AttributeSet) -> Tuple[Any, ...]:
        """``t[X]`` — the restriction of tuple *row_index* to *attributes*."""
        self._check_schema(attributes)
        return tuple(
            self._columns[i][row_index] for i in iter_bits(attributes.mask)
        )

    def distinct_values(self, attribute) -> List[Any]:
        """``πA(r)`` — the distinct values of *attribute*, in first-seen order."""
        seen: Dict[Any, None] = {}
        for value in self.column(attribute):
            if value not in seen:
                seen[value] = None
        return list(seen)

    def active_domain_sizes(self) -> Dict[str, int]:
        """``|πA(r)|`` for every attribute A — used by Proposition 1."""
        return {
            name: len(set(self.column(name))) for name in self._schema.names
        }

    # -- relational operations ---------------------------------------------

    def project(self, attributes, distinct: bool = True) -> "Relation":
        """Relational projection onto *attributes*.

        With ``distinct=True`` (the default, matching relational algebra)
        duplicate projected tuples are removed.
        """
        if not isinstance(attributes, AttributeSet):
            attributes = self._schema.attribute_set(attributes)
        self._check_schema(attributes)
        names = attributes.names
        sub_schema = Schema(names)
        indices = attributes.indices()
        seen = set()
        rows = []
        for i in range(self._size):
            row = tuple(self._columns[j][i] for j in indices)
            if distinct:
                if row in seen:
                    continue
                seen.add(row)
            rows.append(row)
        return Relation.from_rows(sub_schema, rows)

    def select(self, predicate) -> "Relation":
        """Relational selection: keep rows for which *predicate(row)* holds."""
        return Relation.from_rows(
            self._schema, (row for row in self.rows() if predicate(row))
        )

    def distinct(self) -> "Relation":
        """Remove duplicate tuples (sets vs multisets)."""
        seen = set()
        rows = []
        for row in self.rows():
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation.from_rows(self._schema, rows)

    def take(self, row_indices: Iterable[int]) -> "Relation":
        """A new relation made of the given rows (used to sample)."""
        return Relation.from_rows(self._schema, (self.row(i) for i in row_indices))

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """A copy with attributes renamed (values shared, not copied).

        Useful before :meth:`natural_join` to control which columns are
        matched: rename a column *to* a shared name to join on it, or
        away from one to avoid an accidental match.
        """
        unknown = [name for name in mapping if name not in self._schema]
        if unknown:
            raise RelationError(
                f"cannot rename unknown attribute(s) {unknown}"
            )
        new_names = [
            mapping.get(name, name) for name in self._schema.names
        ]
        return Relation.from_columns(Schema(new_names), self._columns)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on the attributes the two schemas share.

        Used to *verify* decompositions on instances: a split of ``r``
        is lossless exactly when joining the fragment projections gives
        ``r`` back (no spurious tuples).  Hash join on the common
        attributes; with no common attribute this is the cross product.
        The result schema lists this relation's attributes first, then
        the other's remaining ones; duplicates are removed (projections
        are set-semantics).
        """
        left_names = self._schema.names
        right_names = other.schema.names
        common = [name for name in left_names if name in other.schema]
        right_only = [name for name in right_names if name not in self._schema]
        result_schema = Schema(list(left_names) + right_only)
        right_common_idx = [other.schema.index_of(name) for name in common]
        right_only_idx = [other.schema.index_of(name) for name in right_only]
        left_common_idx = [self._schema.index_of(name) for name in common]
        buckets: Dict[Tuple[Any, ...], List[int]] = {}
        for j in range(len(other)):
            key = tuple(other.column(i)[j] for i in right_common_idx)
            buckets.setdefault(key, []).append(j)
        seen = set()
        rows = []
        for i in range(self._size):
            left_row = self.row(i)
            key = tuple(left_row[a] for a in left_common_idx)
            for j in buckets.get(key, ()):
                row = left_row + tuple(
                    other.column(a)[j] for a in right_only_idx
                )
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
        return Relation.from_rows(result_schema, rows)

    # -- FD checking ---------------------------------------------------------

    def tuples_agree(self, i: int, j: int, attributes: AttributeSet) -> bool:
        """Do tuples *i* and *j* agree on every attribute of *attributes*?"""
        self._check_schema(attributes)
        columns = self._columns
        return all(
            columns[a][i] == columns[a][j] for a in iter_bits(attributes.mask)
        )

    def agree_set_of_pair(self, i: int, j: int) -> AttributeSet:
        """``ag(ti, tj)`` — the attributes on which tuples *i*, *j* agree."""
        mask = 0
        for a, column in enumerate(self._columns):
            if column[i] == column[j]:
                mask |= 1 << a
        return self._schema.from_mask(mask)

    def satisfies(self, lhs, rhs, nulls_equal: bool = True) -> bool:
        """Does ``lhs → rhs`` hold in this relation (``r ⊨ X → A``)?

        *lhs* may be an :class:`AttributeSet` or anything
        :meth:`Schema.attribute_set` accepts; *rhs* likewise (it may
        contain several attributes, meaning the conjunction of the
        single-attribute FDs).

        With the default ``nulls_equal=True``, ``None`` compares equal to
        ``None`` (partition semantics).  With ``nulls_equal=False`` (SQL
        ``NULL <> NULL``), two tuples only *agree* on an attribute when
        both values are non-null and equal — a tuple with a null in the
        lhs can therefore never participate in a violation.

        Implemented by hashing each tuple's lhs-projection and checking
        that all tuples in a group share the rhs-projection — O(n·p).
        """
        if not isinstance(lhs, AttributeSet):
            lhs = self._schema.attribute_set(lhs)
        if not isinstance(rhs, AttributeSet):
            rhs = self._schema.attribute_set(rhs)
        self._check_schema(lhs)
        self._check_schema(rhs)
        lhs_indices = lhs.indices()
        rhs_indices = rhs.indices()
        columns = self._columns
        witness: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        for i in range(self._size):
            key = tuple(columns[a][i] for a in lhs_indices)
            if not nulls_equal and any(v is None for v in key):
                continue  # this tuple agrees with nobody on the lhs
            value = tuple(columns[a][i] for a in rhs_indices)
            if key not in witness:
                witness[key] = value
                continue
            previous = witness[key]
            if previous != value:
                return False
            if not nulls_equal and any(v is None for v in value):
                # Equal keys but a null on the rhs: under SQL semantics
                # the two tuples do not agree on the rhs.
                return False
        return True

    def find_violation(self, lhs, rhs) -> Optional[Tuple[int, int]]:
        """A pair of row indices witnessing that ``lhs → rhs`` fails.

        Returns ``None`` when the FD holds.  Same hashing scan as
        :meth:`satisfies`, but keeps one representative row per lhs
        group so the counterexample can be reported — this powers the
        guided-sampling miner in :mod:`repro.core.sampling`.
        """
        if not isinstance(lhs, AttributeSet):
            lhs = self._schema.attribute_set(lhs)
        if not isinstance(rhs, AttributeSet):
            rhs = self._schema.attribute_set(rhs)
        self._check_schema(lhs)
        self._check_schema(rhs)
        lhs_indices = lhs.indices()
        rhs_indices = rhs.indices()
        columns = self._columns
        witness: Dict[Tuple[Any, ...], Tuple[Tuple[Any, ...], int]] = {}
        for i in range(self._size):
            key = tuple(columns[a][i] for a in lhs_indices)
            value = tuple(columns[a][i] for a in rhs_indices)
            previous = witness.setdefault(key, (value, i))
            if previous[0] != value:
                return (previous[1], i)
        return None

    def is_superkey(self, attributes) -> bool:
        """Is *attributes* a superkey (determines every attribute)?"""
        if not isinstance(attributes, AttributeSet):
            attributes = self._schema.attribute_set(attributes)
        indices = attributes.indices()
        columns = self._columns
        seen = set()
        for i in range(self._size):
            key = tuple(columns[a][i] for a in indices)
            if key in seen:
                return False
            seen.add(key)
        return True

    # -- misc ---------------------------------------------------------------

    def _check_schema(self, attributes: AttributeSet) -> None:
        if attributes.schema != self._schema:
            raise SchemaMismatchError(
                "attribute set belongs to a different schema than the relation"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self._schema == other._schema
            and sorted(map(repr, self.rows())) == sorted(map(repr, other.rows()))
        )

    def __repr__(self) -> str:
        return (
            f"Relation(schema={list(self._schema.names)!r}, "
            f"size={self._size})"
        )

    def to_text(self, max_rows: int = 20) -> str:
        """A small aligned textual rendering (for examples and the CLI)."""
        header = list(self._schema.names)
        shown = [
            [str(v) for v in self.row(i)]
            for i in range(min(self._size, max_rows))
        ]
        widths = [
            max(len(header[c]), *(len(row[c]) for row in shown))
            if shown
            else len(header[c])
            for c in range(len(header))
        ]
        lines = [
            "  ".join(name.ljust(w) for name, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in shown:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if self._size > max_rows:
            lines.append(f"... ({self._size - max_rows} more rows)")
        return "\n".join(lines)
