"""Evidence-based ranking of mined FDs.

Section 4 of the paper warns that "some functional dependencies could
accidentally hold in a relation extension" and proposes the Armstrong
sample as one relevance aid.  This module supplies the complementary
quantitative aid: how much *evidence* the data actually contains for
each mined FD.

The evidence for ``X → A`` is the number of tuple pairs that agree on
``X`` (and therefore, since the FD holds, on ``A``): pairs that genuinely
*test* the dependency.  An FD with zero witness pairs holds vacuously —
every lhs value is unique — and is the textbook accidental dependency; a
large witness count means many opportunities to fail, all passed.

Computed from the stripped partition of the lhs
(``Σ_c |c|·(|c|−1)/2`` over its classes), so ranking a whole cover costs
one partition product chain per distinct lhs.  The profiling report uses
this to flag weakly-supported FDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.relation import Relation
from repro.fd.fd import FD
from repro.partitions.partition import (
    StrippedPartition,
    partition_product,
    stripped_partition_of_column,
)

__all__ = ["FDEvidence", "fd_evidence", "rank_fds", "witness_pairs"]


@dataclass(frozen=True)
class FDEvidence:
    """One FD with its support measurements."""

    fd: FD
    witness_pairs: int        # tuple pairs agreeing on the lhs
    witness_fraction: float   # .. as a fraction of all tuple pairs

    @property
    def is_vacuous(self) -> bool:
        """No pair ever tested this FD (the lhs is an instance key)."""
        return self.witness_pairs == 0

    def render(self) -> str:
        if self.is_vacuous:
            note = "VACUOUS (lhs unique; holds with no supporting pairs)"
        else:
            note = (
                f"{self.witness_pairs} supporting pair(s), "
                f"{self.witness_fraction:.2%} of all pairs"
            )
        return f"{self.fd}   [{note}]"


def witness_pairs(partition: StrippedPartition) -> int:
    """Pairs of tuples inside a common class: ``Σ |c|(|c|−1)/2``."""
    return sum(
        len(cls) * (len(cls) - 1) // 2 for cls in partition
    )


def fd_evidence(relation: Relation, fds: Sequence[FD],
                nulls_equal: bool = True) -> List[FDEvidence]:
    """Measure the evidence for each FD of *fds* in *relation*.

    Lhs partitions are built once per distinct lhs and cached; the lhs
    partition is the product of its single-attribute stripped partitions.
    """
    num_rows = len(relation)
    total_pairs = num_rows * (num_rows - 1) // 2
    column_partitions: Dict[int, StrippedPartition] = {}
    lhs_partitions: Dict[int, StrippedPartition] = {}

    def column_partition(attribute: int) -> StrippedPartition:
        if attribute not in column_partitions:
            column_partitions[attribute] = stripped_partition_of_column(
                relation.column(attribute), nulls_equal=nulls_equal
            )
        return column_partitions[attribute]

    def lhs_partition(mask: int) -> StrippedPartition:
        if mask not in lhs_partitions:
            current = None
            for attribute in range(len(relation.schema)):
                if mask & (1 << attribute):
                    column = column_partition(attribute)
                    current = column if current is None else \
                        partition_product(current, column)
            if current is None:
                # Empty lhs: every pair agrees on ∅.
                classes = [tuple(range(num_rows))] if num_rows > 1 else []
                current = StrippedPartition(classes, num_rows)
            lhs_partitions[mask] = current
        return lhs_partitions[mask]

    result = []
    for fd in fds:
        pairs = witness_pairs(lhs_partition(fd.lhs.mask))
        fraction = pairs / total_pairs if total_pairs else 0.0
        result.append(
            FDEvidence(fd=fd, witness_pairs=pairs,
                       witness_fraction=fraction)
        )
    return result


def rank_fds(relation: Relation, fds: Sequence[FD],
             nulls_equal: bool = True) -> List[FDEvidence]:
    """Evidence for each FD, strongest first (vacuous FDs sort last)."""
    measured = fd_evidence(relation, fds, nulls_equal=nulls_equal)
    return sorted(
        measured,
        key=lambda e: (-e.witness_pairs, e.fd.rhs_index, e.fd.lhs.mask),
    )
