"""Candidate-key discovery from data (unique column combinations).

A set ``X`` is a key of the *instance* ``r`` exactly when no two tuples
agree on all of ``X`` — i.e. ``X`` is contained in no agree set.  The
minimal such sets are therefore the minimal transversals of the
complements of the *maximal agree sets*:

    ``keys(r) = Tr({R \\ X : X ∈ Max⊆ ag(r)})``

which drops straight out of the same machinery Dep-Miner uses for FD
left-hand sides (it is the ``A = "every attribute"`` analogue of
section 3.3).  This is the instance-level counterpart of
:func:`repro.fd.keys.candidate_keys`, which works from a declared FD
set; the two agree on any relation whose FDs were mined from the data,
and the tests assert that.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.agree_sets import agree_sets
from repro.core.attributes import AttributeSet
from repro.core.relation import Relation
from repro.hypergraph.hypergraph import maximize_sets
from repro.hypergraph.transversals import minimal_transversals
from repro.partitions.database import StrippedPartitionDatabase

__all__ = ["discover_keys"]


def discover_keys(relation: Relation, method: str = "levelwise",
                  nulls_equal: bool = True) -> List[AttributeSet]:
    """All minimal unique column combinations of *relation*.

    Duplicate tuples make the result empty (nothing distinguishes them,
    so no attribute set is unique); an empty or single-tuple relation is
    keyed by the empty set.  *method* picks the transversal algorithm.
    """
    spdb = StrippedPartitionDatabase.from_relation(
        relation, nulls_equal=nulls_equal
    )
    agree = agree_sets(spdb)
    schema = relation.schema
    universe = schema.universe_mask
    maximal_agree = maximize_sets(agree)
    if universe in maximal_agree:
        return []  # duplicate tuples: no attribute set is unique
    edges = [universe & ~mask for mask in maximal_agree]
    return [
        AttributeSet(schema, mask)
        for mask in minimal_transversals(edges, len(schema), method=method)
    ]
