#!/usr/bin/env python
"""Noise-aware performance-regression gate (``make bench-regress``).

Re-runs the committed bench suites and fails when performance regressed
relative to the checked-in baseline documents:

- **obs** (``BENCH_obs.json``) — the instrumentation overhead budget:
  default / disabled tracing must stay within
  ``max(2% of baseline, 2 ms)`` of the uninstrumented pipeline;
- **cache** (``BENCH_cache.json``) — warm-hit and incremental-append
  speedups against their committed values and hard floors;
- **transversal** (``BENCH_transversal.json``) — kernel and vectorized
  transversal speedups over the legacy levelwise search, plus
  bit-identical transversal families;
- **columnar** (``BENCH_columnar.json``) — the columnar backend's
  whole-pipeline speedup over the pure-Python path, plus bit-identical
  FD covers across backend × jobs cells;
- **ingest** (``BENCH_ingest.json``) — the streaming CSV→cover
  speedup over the materializing ``relation_from_csv`` path, plus
  bit-identical covers/Armstrong relations across ingest path ×
  backend × jobs cells and a warm-cache replay that must be served
  without building the ``Relation``;
- **serve** (``BENCH_serve.json``) — the discovery daemon's
  warm-session cover query against a cold one-shot process and an
  in-process cold mine, plus a bit-identical served cover;
- **parallel** (``BENCH_parallel.json``) — the persistent worker
  pool's per-request dispatch latency against a per-call pool, the
  shared-memory arena's context dispatch against pickled context, and
  bit-identical covers across serial / ephemeral / persistent modes.

Every suite additionally runs an instrumented **probe**: a full
``DepMiner`` pipeline under a :class:`~repro.obs.Tracer` and
:class:`~repro.obs.resources.ResourceSampler`, whose
:class:`~repro.obs.manifest.RunManifest` is written into
``results/telemetry/regress_<suite>.json``.  The probe's per-phase
fractions are compared against the baseline's committed ``phases``
section, so a failure names *which pipeline phase* grew — per-phase
attribution, not just a slower total.

All checks are machine-independent: they compare speedup *ratios* and
relative *phase fractions*, never absolute seconds, and every threshold
carries a noise margin.  Absolute-seconds numbers in the baselines are
informational.

Usage::

    PYTHONPATH=src python scripts/check_regression.py [--suite NAME ...]
        [--baseline-dir DIR] [--telemetry-dir DIR]
        [--update-baselines] [--inject slow-kernel]

``--update-baselines`` re-measures and rewrites the baseline documents
(including the ``phases`` fractions) instead of checking — run it after
an intentional perf change, or with shrunken ``REPRO_BENCH_*`` env
workloads to create hermetic test baselines.  ``--inject slow-kernel``
monkeypatches the transversal kernel to the legacy levelwise search
(three redundant passes): the self-test that the gate actually fires.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro.core.depminer import DepMiner  # noqa: E402
from repro.datagen.synthetic import generate_relation  # noqa: E402
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    ResourceSampler,
    RunManifest,
    Tracer,
)

SUITES = ("obs", "cache", "transversal", "columnar", "ingest", "serve",
          "parallel")
BASELINE_FILES = {
    "obs": "BENCH_obs.json",
    "cache": "BENCH_cache.json",
    "transversal": "BENCH_transversal.json",
    "columnar": "BENCH_columnar.json",
    "ingest": "BENCH_ingest.json",
    "serve": "BENCH_serve.json",
    "parallel": "BENCH_parallel.json",
}

#: A measured speedup may sag to this fraction of its committed value
#: before the gate fires — scheduler noise on CI runners is real.
RATIO_MARGIN = 0.6
#: A phase fraction may grow to ``baseline * PHASE_FACTOR +
#: PHASE_SLACK`` before it counts as a regression …
PHASE_FACTOR = 1.5
PHASE_SLACK = 0.02
#: … and phases below this share of the run are ignored outright
#: (their timings are noise at millisecond scale).
PHASE_MIN_FRACTION = 0.02
#: The probe keeps the fastest of this many instrumented runs.
PROBE_RUNS = 3


# -- injection ---------------------------------------------------------------

def inject_slow_kernel() -> None:
    """Force the transversal kernel back to the legacy levelwise search.

    Three redundant levelwise passes per call make the slowdown
    unambiguous even on tiny test workloads.  Patching
    ``repro.hypergraph.kernel`` covers the pipeline (``repro.core.lhs``
    and ``repro.parallel.shards`` import the symbol lazily); the bench
    module binds it at import time, so its reference is re-pointed too.
    """
    import repro.hypergraph.kernel as kernel_module
    from repro.hypergraph.transversals import minimal_transversals_levelwise

    def slow_kernel(edges, num_vertices=0, *args, **kwargs):
        minimal_transversals_levelwise(edges, num_vertices)
        minimal_transversals_levelwise(edges, num_vertices)
        return minimal_transversals_levelwise(edges, num_vertices)

    kernel_module.minimal_transversals_kernel = slow_kernel
    import repro.hypergraph
    repro.hypergraph.minimal_transversals_kernel = slow_kernel
    from benchmarks import bench_transversal_kernel
    bench_transversal_kernel.minimal_transversals_kernel = slow_kernel


# -- instrumented probe ------------------------------------------------------

def run_probe(suite: str, workload: Dict[str, Any],
              meta: Dict[str, Any]) -> RunManifest:
    """Best-of-``PROBE_RUNS`` fully instrumented pipeline run.

    Keeping the fastest probe (by root-span duration) makes the phase
    fractions comparable across machines and repeats — the slow probes
    are the ones a scheduler preempted.

    The **ingest** probe streams the bench CSV through ``ingest_csv``
    under the same tracer instead of mining a pre-built relation, so
    its committed phase fractions pin the ``ingest.read`` /
    ``ingest.factorize`` stage profile alongside the mining phases.
    """
    csv_path = workload.get("csv")
    relation = None
    if csv_path is None:
        relation = generate_relation(
            workload["attrs"], workload["rows"],
            correlation=workload["correlation"], seed=0,
        )
    backend = workload.get("backend", "python")
    best: Optional[RunManifest] = None
    for _ in range(PROBE_RUNS):
        tracer = Tracer()
        metrics = MetricsRegistry()
        sampler = ResourceSampler(tracer=tracer)
        sampler.start()
        try:
            if csv_path is not None:
                from repro.columnar.ingest import ingest_csv

                source = ingest_csv(csv_path, tracer=tracer)
            else:
                source = relation
            DepMiner(build_armstrong="none", backend=backend,
                     tracer=tracer, metrics=metrics).run(source)
        finally:
            sampler.stop()
        manifest = RunManifest.build(
            command=f"check-regression:{suite}", tracer=tracer,
            metrics=metrics, resources=sampler,
            meta=dict(meta, probe_workload=workload),
        )
        if best is None or manifest.total_seconds < best.total_seconds:
            best = manifest
    assert best is not None
    return best


def probe_workload(suite: str, bench) -> Dict[str, Any]:
    """The probe relation parameters, tied to each suite's bench env."""
    if suite == "obs":
        attrs, rows = max(bench.CELLS)
        return {"attrs": attrs, "rows": rows, "correlation": None}
    workload = {
        "attrs": bench.ATTRS,
        "rows": bench.ROWS,
        "correlation": getattr(bench, "CORRELATION", None),
    }
    if suite in ("columnar", "ingest"):
        # Probe the columnar pipeline itself, so the committed phase
        # fractions pin the columnar stage profile, not the python one.
        workload["backend"] = "columnar"
    if suite == "ingest":
        # Stream the bench CSV so the probe covers the ingest phases.
        workload["csv"] = str(bench.workload_csv())
    return workload


# -- checks ------------------------------------------------------------------

class Gate:
    """Accumulates named pass/fail checks for one suite."""

    def __init__(self, suite: str):
        self.suite = suite
        self.checks: List[Dict[str, Any]] = []

    def check(self, name: str, ok: bool, detail: str) -> None:
        self.checks.append({"name": name, "ok": bool(ok), "detail": detail})
        marker = "ok  " if ok else "FAIL"
        print(f"  [{marker}] {name}: {detail}")

    @property
    def failures(self) -> List[Dict[str, Any]]:
        return [c for c in self.checks if not c["ok"]]


def check_phases(gate: Gate, baseline: Dict[str, Any],
                 manifest: RunManifest) -> None:
    """Per-phase attribution: which phase of the probe run grew?"""
    committed = baseline.get("phases")
    if not committed:
        gate.check("phases.baseline", True,
                   "baseline has no phases section (pre-gate baseline); "
                   "run --update-baselines to add one")
        return
    current = manifest.phase_fractions()
    for name in sorted(committed):
        base = committed[name]
        now = current.get(name, 0.0)
        if base < PHASE_MIN_FRACTION and now < PHASE_MIN_FRACTION:
            continue
        allowed = base * PHASE_FACTOR + PHASE_SLACK
        gate.check(
            f"phase.{name}", now <= allowed,
            f"{now:.1%} of run vs baseline {base:.1%} "
            f"(allowed {allowed:.1%})",
        )


def check_workload(gate: Gate, baseline: Dict[str, Any],
                   current: Dict[str, Any]) -> bool:
    """Ratios only compare like with like: the workloads must match."""
    strip = lambda d: {k: v for k, v in (d or {}).items() if k != "repeats"}
    base, now = strip(baseline.get("workload")), strip(current.get("workload"))
    ok = base == now
    gate.check(
        "workload.matches_baseline", ok,
        "identical" if ok else (
            f"baseline {base} vs current {now} — rerun with matching "
            f"REPRO_BENCH_* env or --update-baselines"
        ),
    )
    return ok


def check_ratio(gate: Gate, name: str, current: float, committed: float,
                floor: float) -> None:
    threshold = max(floor, committed * RATIO_MARGIN)
    gate.check(
        f"speedup.{name}", current >= threshold,
        f"{current:.2f}x vs committed {committed:.2f}x "
        f"(threshold {threshold:.2f}x)",
    )


# -- suites ------------------------------------------------------------------

def run_obs(gate: Gate, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from benchmarks import bench_obs_overhead as bench

    timings = bench.measure()
    report = bench.overhead_report(timings)
    check_workload(gate, baseline, report)
    base_seconds = timings["baseline"]
    allowed = max(base_seconds * bench.MAX_OVERHEAD_RATIO,
                  bench.ABSOLUTE_SLACK_SECONDS)
    for variant in ("default", "disabled", "telemetry"):
        if variant not in timings:
            continue
        overhead = timings[variant] - base_seconds
        gate.check(
            f"overhead.{variant}", overhead <= allowed,
            f"+{overhead * 1000:.2f} ms over baseline "
            f"{base_seconds * 1000:.2f} ms "
            f"(allowed +{allowed * 1000:.2f} ms)",
        )
    return report


def run_cache(gate: Gate, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from benchmarks import bench_cache as bench

    measured = bench.measure()
    report = bench.report(measured)
    covers = measured["covers"]
    gate.check(
        "covers.warm_identical", covers["cold"] == covers["warm"],
        "warm rerun reproduces the cold cover",
    )
    gate.check(
        "covers.incremental_identical",
        covers["cold_grown"] == covers["incremental"],
        "incremental append reproduces the cold re-mine cover",
    )
    if check_workload(gate, baseline, report):
        floors = baseline.get("floors", {})
        committed = baseline.get("speedup", {})
        for name in ("warm_vs_cold", "incremental_vs_cold_grown"):
            check_ratio(gate, name, report["speedup"][name],
                        committed.get(name, 0.0), floors.get(name, 0.0))
    return report


def run_transversal(gate: Gate, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from benchmarks import bench_transversal_kernel as bench

    measured = bench.measure()
    report = bench.report(measured)
    outputs = measured["outputs"]
    gate.check(
        "transversals.identical",
        outputs["legacy"] == outputs["kernel"] == outputs["vectorized"],
        "all three algorithms emit identical transversal families",
    )
    if check_workload(gate, baseline, report):
        floors = baseline.get("floors", {})
        committed = baseline.get("speedup", {})
        for name in ("kernel_vs_legacy", "vectorized_vs_legacy"):
            check_ratio(gate, name, report["speedup"][name],
                        committed.get(name, 0.0), floors.get(name, 0.0))
    return report


def run_columnar(gate: Gate, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from benchmarks import bench_columnar as bench

    measured = bench.measure()
    report = bench.report(measured)
    gate.check(
        "covers.backends_identical", report["covers_identical"],
        "python and columnar backends emit identical FD covers",
    )
    gate.check(
        "covers.backend_jobs_grid_identical",
        report["covers_identical_across_backends_and_jobs"],
        "covers identical across the backend x jobs conformance grid",
    )
    if check_workload(gate, baseline, report):
        floors = baseline.get("floors", {})
        committed = baseline.get("speedup", {})
        check_ratio(
            gate, "columnar_vs_python",
            report["speedup"]["columnar_vs_python"],
            committed.get("columnar_vs_python", 0.0),
            floors.get("columnar_vs_python", 0.0),
        )
    return report


def run_ingest(gate: Gate, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from benchmarks import bench_ingest as bench

    measured = bench.measure()
    report = bench.report(measured)
    gate.check(
        "covers.ingest_paths_identical", report["covers_identical"],
        "legacy and streaming ingest paths emit identical FD covers",
    )
    gate.check(
        "outputs.paths_backends_jobs_identical",
        report["outputs_identical_across_paths_backends_and_jobs"],
        "covers and Armstrong relations identical across the "
        "ingest-path x backend x jobs conformance grid",
    )
    warm = report["warm_cache"]
    gate.check(
        "warm_cache.full_hit_without_materialization",
        warm["full_hit"] == 1 and not warm["materialized"]
        and warm["covers_identical"] and warm["armstrong_identical"],
        "warm replay served from the cache before the Relation exists",
    )
    if check_workload(gate, baseline, report):
        floors = baseline.get("floors", {})
        committed = baseline.get("speedup", {})
        check_ratio(
            gate, "streaming_vs_legacy",
            report["speedup"]["streaming_vs_legacy"],
            committed.get("streaming_vs_legacy", 0.0),
            floors.get("streaming_vs_legacy", 0.0),
        )
    return report


def run_serve(gate: Gate, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from benchmarks import bench_serve as bench

    measured = bench.measure()
    report = bench.report(measured)
    covers = measured["covers"]
    gate.check(
        "covers.served_identical",
        covers["warm_session"] == covers["cold_mine"],
        "warm daemon session serves the cold DepMiner.run cover",
    )
    if check_workload(gate, baseline, report):
        floors = baseline.get("floors", {})
        committed = baseline.get("speedup", {})
        for name in ("warm_session_vs_cold_process",
                     "warm_session_vs_cold_mine"):
            check_ratio(gate, name, report["speedup"][name],
                        committed.get(name, 0.0), floors.get(name, 0.0))
    return report


def run_parallel(gate: Gate, baseline: Dict[str, Any]) -> Dict[str, Any]:
    from benchmarks import bench_parallel_scaling as bench

    measured = bench.measure()
    report = bench.report(measured)
    gate.check(
        "covers.dispatch_modes_identical", report["covers_identical"],
        "serial, ephemeral-pool and persistent-pool covers identical",
    )
    if check_workload(gate, baseline, report):
        floors = baseline.get("floors", {})
        committed = baseline.get("speedup", {})
        for name in ("persistent_vs_ephemeral", "shm_vs_pickle_dispatch"):
            if name not in report["speedup"]:
                continue  # NumPy-free host: no arena to time
            check_ratio(gate, name, report["speedup"][name],
                        committed.get(name, 0.0), floors.get(name, 0.0))
    return report


SUITE_RUNNERS = {
    "obs": run_obs,
    "cache": run_cache,
    "transversal": run_transversal,
    "columnar": run_columnar,
    "ingest": run_ingest,
    "serve": run_serve,
    "parallel": run_parallel,
}


def bench_module(suite: str):
    import importlib

    return importlib.import_module({
        "obs": "benchmarks.bench_obs_overhead",
        "cache": "benchmarks.bench_cache",
        "transversal": "benchmarks.bench_transversal_kernel",
        "columnar": "benchmarks.bench_columnar",
        "ingest": "benchmarks.bench_ingest",
        "serve": "benchmarks.bench_serve",
        "parallel": "benchmarks.bench_parallel_scaling",
    }[suite])


# -- baseline regeneration ---------------------------------------------------

def update_baseline(suite: str, baseline_path: Path,
                    manifest: RunManifest,
                    report: Dict[str, Any]) -> None:
    """Rewrite one baseline document from the fresh measurements.

    The committed hard floors survive only where the fresh measurement
    clears them — regenerating on a deliberately tiny test workload
    (where e.g. the kernel speedup collapses) lowers the floor to half
    the measured ratio instead of baking in an unmeetable bar.
    """
    document = dict(report)
    if "floors" in document and "speedup" in document:
        floors = {}
        for name, floor in document["floors"].items():
            measured = document["speedup"].get(name, 0.0)
            if measured >= floor:
                floors[name] = floor
            else:
                floors[name] = round(max(0.1, measured * 0.5), 2)
        document["floors"] = floors
    document["phases"] = {
        name: round(value, 4)
        for name, value in manifest.phase_fractions().items()
    }
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    print(f"  wrote baseline {baseline_path}")


# -- driver ------------------------------------------------------------------

def run_suite(suite: str, baseline_dir: Path, telemetry_dir: Path,
              update: bool, injected: Optional[str]) -> Tuple[bool, Path]:
    baseline_path = baseline_dir / BASELINE_FILES[suite]
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
    elif update:
        baseline = {}
    else:
        print(f"== {suite}: missing baseline {baseline_path}")
        return False, baseline_path
    print(f"== {suite} "
          f"({'updating baselines' if update else 'checking'}"
          f"{', injected: ' + injected if injected else ''})")
    gate = Gate(suite)
    bench = bench_module(suite)
    started = time.perf_counter()
    report = SUITE_RUNNERS[suite](gate, baseline)
    manifest = run_probe(
        suite, probe_workload(suite, bench),
        meta={
            "suite": suite,
            "mode": "update-baselines" if update else "check",
            "injected": injected,
            "baseline": str(baseline_path),
        },
    )
    if not update:
        check_phases(gate, baseline, manifest)
    manifest.meta["checks"] = gate.checks
    manifest.meta["bench_report"] = report
    manifest.meta["gate_seconds"] = round(
        time.perf_counter() - started, 3
    )
    out = manifest.write(telemetry_dir / f"regress_{suite}.json")
    print(f"  telemetry manifest: {out}")
    if update:
        update_baseline(suite, baseline_path, manifest, report)
        return True, baseline_path
    failures = gate.failures
    if failures:
        print(f"  {suite}: {len(failures)} regression(s):")
        for failure in failures:
            print(f"    REGRESSED {failure['name']}: {failure['detail']}")
    else:
        print(f"  {suite}: all {len(gate.checks)} checks passed")
    return not failures, baseline_path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="noise-aware perf-regression gate over the bench "
                    "suites (see module docstring)",
    )
    parser.add_argument(
        "--suite", action="append", choices=SUITES, dest="suites",
        help="suite(s) to run (default: all)",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=REPO_ROOT,
        help="directory holding BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--telemetry-dir", type=Path,
        default=REPO_ROOT / "results" / "telemetry",
        help="where to write regress_<suite>.json manifests",
    )
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="rewrite the baseline documents instead of checking",
    )
    parser.add_argument(
        "--inject", choices=("slow-kernel",),
        help="deliberately slow the pipeline first (gate self-test)",
    )
    args = parser.parse_args(argv)
    if args.inject == "slow-kernel":
        inject_slow_kernel()
    suites = args.suites or list(SUITES)
    ok = True
    for suite in suites:
        suite_ok, _ = run_suite(
            suite, args.baseline_dir, args.telemetry_dir,
            args.update_baselines, args.inject,
        )
        ok = ok and suite_ok
    if not ok:
        print("bench-regress: FAILED (see REGRESSED lines above)")
        return 1
    print("bench-regress: OK" if not args.update_baselines
          else "bench-regress: baselines updated")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
