"""Run the ablation comparisons and print a summary report.

A plain-timer companion to the pytest-benchmark suite: each ablation of
DESIGN.md is executed head-to-head on identical inputs and summarised as
one table, written to ``results/ablations.txt`` (and stdout).

    python scripts/run_ablations.py [--rows 1000] [--attrs 10] [--out results]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.agree_sets import (
    agree_sets_from_couples,
    agree_sets_from_identifiers,
    naive_agree_sets,
)
from repro.core.agree_fast import agree_sets_vectorized
from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation
from repro.fdep import Fdep
from repro.hypergraph.dfs import minimal_transversals_dfs
from repro.hypergraph.transversals import (
    minimal_transversals_berge,
    minimal_transversals_levelwise,
)
from repro.partitions.database import StrippedPartitionDatabase
from repro.tane.armstrong_ext import tane_with_armstrong
from repro.tane.tane import Tane


def timed(fn, *args, repeat: int = 3, **kwargs):
    best = float("inf")
    value = None
    for _ in range(repeat):
        start = time.perf_counter()
        value = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, value


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--rows", type=int, default=1000)
    parser.add_argument("--attrs", type=int, default=10)
    parser.add_argument("--correlation", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    relation = generate_relation(
        args.attrs, args.rows, correlation=args.correlation, seed=args.seed
    )
    spdb = StrippedPartitionDatabase.from_relation(relation)
    lines = [
        f"Ablation summary — |R|={args.attrs}, |r|={args.rows}, "
        f"c={args.correlation:.0%}, seed={args.seed} "
        f"(best of 3, seconds)",
        "",
    ]

    def row(group, name, seconds, note=""):
        lines.append(f"{group:<22} {name:<28} {seconds:>9.4f}  {note}")

    # Agree-set algorithms.
    naive_s, reference = timed(naive_agree_sets, relation, repeat=1)
    row("agree-sets", "naive all-pairs", naive_s)
    for name, fn in (
        ("couples (Algorithm 2)", agree_sets_from_couples),
        ("identifiers (Algorithm 3)", agree_sets_from_identifiers),
        ("vectorized (NumPy)", agree_sets_vectorized),
    ):
        seconds, value = timed(fn, spdb)
        assert value == reference, name
        row("agree-sets", name, seconds)
    lines.append("")

    # Transversal strategies on the mined cmax families.
    mined = DepMiner(build_armstrong="none").run(relation)
    families = list(mined.cmax_sets.values())

    def run_transversals(algorithm):
        return [algorithm(edges, args.attrs) for edges in families]

    reference_tr = run_transversals(minimal_transversals_levelwise)
    for name, algorithm in (
        ("levelwise (Algorithm 5)", minimal_transversals_levelwise),
        ("Berge sequential", minimal_transversals_berge),
        ("DFS (FastFDs-style)", minimal_transversals_dfs),
    ):
        seconds, value = timed(run_transversals, algorithm)
        assert value == reference_tr, name
        row("transversals", name, seconds)
    lines.append("")

    # Whole miners (identical covers asserted).
    expected = mined.fds
    for name, fn in (
        ("Dep-Miner", lambda: DepMiner(build_armstrong="none").run(relation).fds),
        ("Dep-Miner 2", lambda: DepMiner(
            build_armstrong="none", agree_algorithm="identifiers"
        ).run(relation).fds),
        ("Dep-Miner (vectorized)", lambda: DepMiner(
            build_armstrong="none", agree_algorithm="vectorized"
        ).run(relation).fds),
        ("TANE", lambda: Tane().run(relation).fds),
        ("FDEP", lambda: Fdep().run(relation).fds),
    ):
        seconds, value = timed(fn)
        assert value == expected, name
        row("miners", name, seconds, f"{len(value)} FDs")
    lines.append("")

    # Armstrong "for free" vs TANE + extension.
    seconds, _ = timed(DepMiner().run, relation)
    row("armstrong", "Dep-Miner incl. Armstrong", seconds)
    seconds, _ = timed(tane_with_armstrong, relation)
    row("armstrong", "TANE + Tr(lhs) extension", seconds)

    report = "\n".join(lines)
    print(report)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "ablations.txt").write_text(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
