#!/usr/bin/env python
"""End-to-end smoke of the discovery daemon (``make serve-smoke``).

Usage::

    python scripts/check_serve.py [--backend python|columnar] [--jobs N]

Boots a real ``repro serve`` process on an ephemeral port, drives the
whole session lifecycle over HTTP, and asserts the properties the
service exists to provide:

- register → append → cover/keys/armstrong round-trips, with the cover
  bit-identical to a cold in-process ``DepMiner.run`` on the same rows;
- a repeat registration of the same relation is served from the shared
  artifact store (``cache.full_hit``) without re-mining;
- failures come back as structured, typed JSON error documents (an
  unknown session is a 404 ``SessionNotFoundError``);
- every request leaves a valid run manifest in ``--telemetry-dir``;
- ``POST /shutdown`` drains and the process exits 0.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

try:
    from repro.service import RemoteServiceError, ServiceClient
except ImportError:  # running from a checkout without installation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.service import RemoteServiceError, ServiceClient

from repro.core.depminer import DepMiner
from repro.core.relation import Relation, Schema
from repro.obs.manifest import RunManifest, validate_manifest

ROWS = [
    ["1", "x", "0", "p"],
    ["1", "x", "1", "q"],
    ["2", "y", "0", "p"],
    ["2", "z", "1", "q"],
    ["3", "z", "0", "r"],
]
ATTRIBUTES = ["a", "b", "c", "d"]
EXTRA = [["4", "w", "0", "s"], ["4", "w", "1", "s"]]


def start_server(telemetry: Path, backend: str, jobs: int):
    """Launch ``repro serve`` and wait for its startup line."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--backend", backend, "--jobs", str(jobs),
         "--telemetry-dir", str(telemetry)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env,
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line.startswith("serving on "):
            return process, line.split("serving on ", 1)[1].strip()
        if process.poll() is not None:
            break
    raise RuntimeError(
        f"server never announced itself "
        f"(exit {process.poll()}): {process.stdout.read()}"
    )


def cold_cover(rows, backend: str, jobs: int):
    relation = Relation.from_rows(Schema(ATTRIBUTES),
                                  [tuple(row) for row in rows])
    result = DepMiner(build_armstrong="none", backend=backend,
                      jobs=jobs).run(relation)
    return sorted((tuple(fd.lhs.names), fd.rhs) for fd in result.fds)


def served_cover(document):
    return sorted((tuple(fd["lhs"]), fd["rhs"])
                  for fd in document["fds"])


def drive(client: ServiceClient, backend: str, jobs: int) -> list:
    problems = []

    def expect(condition, description):
        if not condition:
            problems.append(description)

    expect(client.health()["status"] == "ok", "health check failed")

    first = client.register("smoke", attributes=ATTRIBUTES, rows=ROWS)
    sid = first["session"]["id"]
    expect(first["session"]["num_rows"] == len(ROWS),
           "register row count wrong")
    expect(served_cover(first["cover"]) == cold_cover(ROWS, backend, jobs),
           "registered cover differs from cold DepMiner.run")

    appended = client.append(sid, EXTRA)
    expect(
        served_cover(appended["cover"])
        == cold_cover(ROWS + EXTRA, backend, jobs),
        "post-append cover differs from cold DepMiner.run",
    )
    expect(client.keys(sid)["count"] >= 1, "no candidate keys found")
    armstrong = client.armstrong(sid)
    expect(armstrong["armstrong"]["num_rows"] >= 1,
           "armstrong relation is empty")

    warm = client.register("smoke-again", attributes=ATTRIBUTES,
                           rows=ROWS + EXTRA)
    expect(warm["counters"].get("cache.full_hit", 0) >= 1,
           "repeat registration did not hit the shared artifact store")
    expect(served_cover(warm["cover"]) == served_cover(appended["cover"]),
           "warm cover differs from the session it should mirror")

    try:
        client.cover("s9999-nope")
        problems.append("unknown session did not raise")
    except RemoteServiceError as error:
        expect(error.status == 404 and
               error.error_type == "SessionNotFoundError",
               f"unknown session mapped to {error.status} "
               f"{error.error_type}, wanted 404 SessionNotFoundError")

    stats = client.stats()
    expect(stats["registry"]["sessions"] == 2, "session count wrong")
    expect(stats["counters"].get("service.errors", 0) >= 1,
           "error counter did not move")
    return problems


def check_manifests(telemetry: Path) -> list:
    problems = []
    manifests = sorted(telemetry.glob("request-*.json"))
    if not manifests:
        return ["no request manifests were written"]
    for path in manifests:
        try:
            manifest = RunManifest.load(path)
        except Exception as error:  # noqa: BLE001 - report, don't crash
            problems.append(f"{path.name}: unreadable ({error})")
            continue
        for problem in validate_manifest(manifest.to_dict()):
            problems.append(f"{path.name}: {problem}")
        if not any(span["name"] == "service.request"
                   for span in manifest.spans):
            problems.append(f"{path.name}: no service.request span")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="python",
                        choices=("python", "columnar"))
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    problems = []
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        telemetry = Path(tmp) / "manifests"
        process, base_url = start_server(telemetry, args.backend,
                                         args.jobs)
        client = ServiceClient(base_url, timeout=60.0)
        try:
            problems += drive(client, args.backend, args.jobs)
            reply = client.shutdown()
            if reply.get("status") != "shutting down":
                problems.append(f"unexpected shutdown reply: {reply}")
            exit_code = process.wait(timeout=30)
            if exit_code != 0:
                problems.append(
                    f"server exited {exit_code} after graceful shutdown"
                )
        finally:
            if process.poll() is None:
                process.terminate()
                process.wait(timeout=10)
        problems += check_manifests(telemetry)

    for problem in problems:
        print(f"serve-smoke: {problem}")
    if not problems:
        print(f"serve-smoke: OK (backend={args.backend}, "
              f"jobs={args.jobs})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
