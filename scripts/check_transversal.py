#!/usr/bin/env python
"""Validate the transversal-kernel smoke trace (``make transversal-smoke``).

Usage::

    python scripts/check_transversal.py TRACE.jsonl

Reads the trace JSONL of a ``repro discover --transversal kernel`` run
over ``scripts/fixtures/transversal_smoke.csv`` — a fixture built so
every layer of the kernel's reduction pass has work to do (duplicated
``b``/``c`` columns merge vertices; a row pair identical up to ``id``
commits an essential vertex; the rest splits into components) — and
asserts the observability that proves the pass actually ran:

- at least one ``transversal.reduce`` span, whose attributes account for
  an essential commitment and a vertex merge somewhere in the run;
- the reduction counters (``transversal.essential_committed``,
  ``transversal.vertices_merged``, ``transversal.components``) and the
  levelwise series (``lhs.candidates_generated``) all fired.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def load(path: Path):
    counters = {}
    reduce_spans = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "metric" and record.get("kind") == "counter":
            counters[record["name"]] = record["value"]
        elif record.get("type") == "span" and \
                record.get("name") == "transversal.reduce":
            reduce_spans.append(record)
    return counters, reduce_spans


def check(counters: dict, reduce_spans: list) -> list:
    problems = []

    def expect_counter(name, minimum):
        actual = counters.get(name, 0)
        if actual < minimum:
            problems.append(
                f"counter {name}={actual}, expected >= {minimum}"
            )

    expect_counter("transversal.essential_committed", 1)
    expect_counter("transversal.vertices_merged", 1)
    expect_counter("transversal.components", 1)
    expect_counter("lhs.candidates_generated", 1)

    if not reduce_spans:
        problems.append(
            "no transversal.reduce span — the reduction pass never ran "
            "(was the run made with --transversal kernel?)"
        )
    else:
        attrs = [span.get("attrs", {}) for span in reduce_spans]
        if not any(a.get("essential", 0) >= 1 for a in attrs):
            problems.append(
                "no transversal.reduce span recorded an essential commit"
            )
        if not any(a.get("merged", 0) >= 1 for a in attrs):
            problems.append(
                "no transversal.reduce span recorded a vertex merge"
            )
    return problems


def main(argv) -> int:
    if len(argv) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.is_file():
        print(f"{path}: no such file", file=sys.stderr)
        return 2
    problems = check(*load(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"transversal smoke OK ({path.name})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
