#!/usr/bin/env python
"""Validate the fault-smoke run (the ``make faults-smoke`` checker).

Usage::

    python scripts/check_faults.py TRACE.jsonl PLAIN.txt FAULTY.txt

``TRACE.jsonl`` is the trace of a ``repro discover --jobs 2 --cache-dir
... --fault-plan scripts/fault_plans/smoke.json`` run; ``PLAIN.txt`` and
``FAULTY.txt`` hold the stdout of the fault-free and faulty runs over
the same input.  Asserts the reliability layer actually engaged:

- faults were injected at all (``reliability.injected``);
- the executor retried shard attempts (``parallel.retry``) and then
  degraded the poisoned pool to serial (``parallel.degraded``);
- the artifact store counted the disk IO errors (``cache.io_error``)
  and quarantined the disk tier exactly once (``cache.quarantined``);
- despite all of that, the mined cover is byte-identical to the
  fault-free run — recovery, not a different answer.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def counters(path: Path) -> dict:
    values = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "metric" and record.get("kind") == "counter":
            values[record["name"]] = record["value"]
    return values


def check(trace: dict, plain: str, faulty: str) -> list:
    problems = []

    def expect(name, predicate, description):
        actual = trace.get(name, 0)
        if not predicate(actual):
            problems.append(
                f"trace: counter {name}={actual}, expected {description}"
            )

    expect("reliability.injected", lambda v: v >= 1, ">= 1 injected fault")
    expect("parallel.retry", lambda v: v >= 1, ">= 1 shard retry")
    expect("parallel.degraded", lambda v: v == 1,
           "exactly 1 degradation to serial")
    expect("cache.io_error", lambda v: v >= 3,
           ">= 3 disk IO errors (the quarantine threshold)")
    expect("cache.quarantined", lambda v: v == 1,
           "exactly 1 disk-tier quarantine")
    if plain != faulty:
        problems.append(
            "stdout of the faulty run differs from the fault-free run — "
            "the reliability layer changed the answer"
        )
    return problems


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    trace_path, plain_path, faulty_path = (Path(arg) for arg in argv)
    for path in (trace_path, plain_path, faulty_path):
        if not path.is_file():
            print(f"{path}: no such file", file=sys.stderr)
            return 2
    problems = check(
        counters(trace_path),
        plain_path.read_text(),
        faulty_path.read_text(),
    )
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"fault smoke OK ({trace_path.name}: covers identical, "
              f"degradation and quarantine engaged)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
