#!/usr/bin/env python
"""Validate the cache-smoke traces (the ``make cache-smoke`` checker).

Usage::

    python scripts/check_cache.py COLD.jsonl WARM.jsonl APPEND.jsonl

Reads three trace JSONL files produced by ``repro discover --cache-dir``
runs over the same relation and asserts the counters that prove the
cache actually worked:

- the **cold** trace recorded three artefact writes (partitions, agree
  sets, cover) and no hits;
- the **warm** trace recorded a ``cache.full_hit`` — the rerun was
  served entirely from the cover artefact — and a matching ``cache.hit``
  with zero writes;
- the **append** trace recorded ``incremental.rows_appended`` and a
  delta sweep (``incremental.delta_couples`` present), i.e. the appended
  rows took the incremental path rather than a cold re-mine.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def counters(path: Path) -> dict:
    values = {}
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "metric" and record.get("kind") == "counter":
            values[record["name"]] = record["value"]
    return values


def check(cold: dict, warm: dict, append: dict) -> list:
    problems = []

    def expect(trace, name, values, predicate, description):
        actual = values.get(name, 0)
        if not predicate(actual):
            problems.append(
                f"{trace}: counter {name}={actual}, expected {description}"
            )

    expect("cold", "cache.put", cold, lambda v: v == 3, "3 artefact writes")
    expect("cold", "cache.hit", cold, lambda v: v == 0, "no hits")
    expect("warm", "cache.full_hit", warm, lambda v: v >= 1,
           ">= 1 (the warm-hit speedup counter)")
    expect("warm", "cache.hit", warm, lambda v: v >= 1, ">= 1")
    expect("warm", "cache.put", warm, lambda v: v == 0, "no writes")
    expect("append", "incremental.rows_appended", append, lambda v: v >= 1,
           ">= 1 appended row")
    expect("append", "incremental.delta_couples", append, lambda v: v >= 0,
           "a delta sweep record")
    if "incremental.delta_couples" not in append:
        problems.append(
            "append: counter incremental.delta_couples missing — the "
            "appended rows did not take the incremental path"
        )
    return problems


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    paths = [Path(arg) for arg in argv]
    for path in paths:
        if not path.is_file():
            print(f"{path}: no such file", file=sys.stderr)
            return 2
    problems = check(*(counters(path) for path in paths))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        names = ", ".join(path.name for path in paths)
        print(f"cache smoke OK ({names})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
