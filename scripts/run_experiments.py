"""Run the full experiment suite and save paper-style reports.

Runs each correlation grid once and renders every artefact that depends
on it (table + time figure + size figure), so the three grids cover all
nine experiment ids.  Results land in ``results/`` as text files, and a
compact summary (used to fill EXPERIMENTS.md) is printed at the end.

    python scripts/run_experiments.py [--scale small] [--timeout 60]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS, experiment_report
from repro.bench.harness import run_grid
from repro.datagen.workloads import grid_for

GRID_EXPERIMENTS = {
    "none": ("table3", "fig2", "fig3"),
    "c30": ("table4", "fig4", "fig5"),
    "c50": ("table5", "fig6", "fig7"),
}


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="small")
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--isolated", action="store_true")
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    summary = {}
    for correlation_name, experiment_names in GRID_EXPERIMENTS.items():
        grid = grid_for(correlation_name, scale=args.scale)
        print(f"== grid {grid.name} ==", flush=True)
        result = run_grid(
            grid,
            timeout=args.timeout,
            isolated=args.isolated,
            progress=lambda line: print("  " + line, flush=True),
        )
        for name in experiment_names:
            report = experiment_report(EXPERIMENTS[name], result)
            path = out_dir / f"{name}_{args.scale}.txt"
            path.write_text(report + "\n")
            print(f"wrote {path}", flush=True)
        summary[correlation_name] = [
            {
                "attrs": cell.spec.num_attributes,
                "rows": cell.spec.num_tuples,
                "algorithm": cell.algorithm,
                "seconds": round(cell.seconds, 3),
                "fds": cell.num_fds,
                "armstrong": cell.armstrong_size,
                "timed_out": cell.timed_out,
            }
            for cell in result.cells
        ]
    (out_dir / f"summary_{args.scale}.json").write_text(
        json.dumps(summary, indent=2)
    )
    print("done")
    return 0


if __name__ == "__main__":
    sys.exit(main())
