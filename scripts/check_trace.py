#!/usr/bin/env python
"""Validate a trace JSONL file (the ``make trace-smoke`` checker).

Usage::

    python scripts/check_trace.py TRACE.jsonl [TRACE2.jsonl ...]

Checks each file against the ``repro-trace`` schema
(:func:`repro.obs.validate_records`) plus the whole-file span-tree
invariants the per-record validator cannot see: at least one span, a
meta header carrying the producing command, parents exported before
their children (tree order), no orphaned parent references, every span
closed (error spans included), child depth one below its parent, and
child intervals contained *exactly* in their parent's —
``Tracer.record`` clamps back-dated worker spans to the parent's
window, so containment needs no tolerance.  Exits non-zero with one
line per problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    from repro.obs import validate_records
except ImportError:  # running from a checkout without installation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import validate_records


def check_file(path: Path) -> list:
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        return [f"cannot read: {error}"]
    records = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            return [f"line {number}: not JSON ({error})"]
    problems = validate_records(records)
    spans = [r for r in records if r.get("type") == "span"]
    if not spans:
        problems.append("trace contains no spans")
    seen = set()
    by_id = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in seen:
            problems.append(
                f"span {span.get('id')} ({span.get('name')!r}) exported "
                f"before its parent {parent}"
            )
        seen.add(span.get("id"))
        by_id[span.get("id")] = span
    problems.extend(check_span_tree(spans, by_id))
    return problems


def check_span_tree(spans: list, by_id: dict) -> list:
    """Structural invariants of the whole span tree.

    - every span is *closed* (``end`` present, ``end >= start``) — an
      error span that never popped would surface here;
    - a child's ``depth`` is exactly one below its parent's;
    - a child's ``[start, end]`` interval lies inside its parent's,
      exactly (``Tracer.record`` clamps relayed worker spans to the
      parent window, so no tolerance is needed).
    """
    problems = []
    for span in spans:
        label = f"span {span.get('id')} ({span.get('name')!r})"
        start, end = span.get("start"), span.get("end")
        if start is None or end is None:
            problems.append(f"{label} was never closed "
                            f"(status {span.get('status')!r})")
            continue
        if end < start:
            problems.append(
                f"{label} ends before it starts ({end} < {start})"
            )
        parent = by_id.get(span.get("parent_id"))
        if parent is None:
            if span.get("parent_id") is None and span.get("depth") != 0:
                problems.append(
                    f"{label} is a root at depth {span.get('depth')}"
                )
            continue
        if span.get("depth") != parent.get("depth", 0) + 1:
            problems.append(
                f"{label} has depth {span.get('depth')} under parent "
                f"{parent.get('id')} at depth {parent.get('depth')}"
            )
        if parent.get("start") is not None and start < parent["start"]:
            problems.append(
                f"{label} starts before its parent {parent.get('id')}"
            )
        if parent.get("end") is not None and end > parent["end"]:
            problems.append(
                f"{label} ends after its parent {parent.get('id')}"
            )
    return problems


def main(argv) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for name in argv:
        path = Path(name)
        problems = check_file(path)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}")
        else:
            spans = sum(
                1 for line in path.read_text().splitlines()
                if '"type": "span"' in line
            )
            print(f"{path}: OK ({spans} spans)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
