#!/usr/bin/env python
"""Validate a trace JSONL file (the ``make trace-smoke`` checker).

Usage::

    python scripts/check_trace.py TRACE.jsonl [TRACE2.jsonl ...]

Checks each file against the ``repro-trace`` schema
(:func:`repro.obs.validate_records`) plus a few whole-file sanity
conditions the per-record validator cannot see: at least one span, a
meta header carrying the producing command, and parents exported before
their children (tree order).  Exits non-zero with one line per problem.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

try:
    from repro.obs import validate_records
except ImportError:  # running from a checkout without installation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import validate_records


def check_file(path: Path) -> list:
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        return [f"cannot read: {error}"]
    records = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            return [f"line {number}: not JSON ({error})"]
    problems = validate_records(records)
    spans = [r for r in records if r.get("type") == "span"]
    if not spans:
        problems.append("trace contains no spans")
    seen = set()
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in seen:
            problems.append(
                f"span {span.get('id')} ({span.get('name')!r}) exported "
                f"before its parent {parent}"
            )
        seen.add(span.get("id"))
    return problems


def main(argv) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for name in argv:
        path = Path(name)
        problems = check_file(path)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}")
        else:
            spans = sum(
                1 for line in path.read_text().splitlines()
                if '"type": "span"' in line
            )
            print(f"{path}: OK ({spans} spans)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
