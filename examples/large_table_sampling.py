"""Guided sampling on a large synthetic table.

Dep-Miner's agree-set step enumerates tuple couples, which grows with
the square of the class sizes; on very large relations the classical
complement is to mine a *sample* and repair it with counterexamples
until the mined cover is exact (see ``repro.core.sampling``).  This
script generates a large benchmark relation, runs both paths, verifies
they produce the identical FD cover, and reports the speedup and the
final witness-sample size.

    python examples/large_table_sampling.py [--rows 50000] [--attrs 8]
"""

import argparse
import time

from repro.core.depminer import discover_fds
from repro.core.sampling import discover_with_sampling
from repro.datagen.synthetic import generate_relation


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=50_000)
    parser.add_argument("--attrs", type=int, default=8)
    parser.add_argument(
        "--correlation", type=float, default=0.9,
        help="sampling pays off on duplication-heavy data, where the "
             "couple enumeration dominates direct mining",
    )
    parser.add_argument("--sample-size", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(
        f"generating |R|={args.attrs}, |r|={args.rows}, "
        f"c={args.correlation:.0%} ..."
    )
    relation = generate_relation(
        args.attrs, args.rows, correlation=args.correlation, seed=args.seed
    )

    start = time.perf_counter()
    direct = discover_fds(relation)
    direct_seconds = time.perf_counter() - start
    print(
        f"direct Dep-Miner:      {len(direct):4d} FDs in "
        f"{direct_seconds:7.2f}s"
    )

    start = time.perf_counter()
    sampled = discover_with_sampling(
        relation, sample_size=args.sample_size, seed=args.seed
    )
    sampled_seconds = time.perf_counter() - start
    print(
        f"guided sampling:       {len(sampled.fds):4d} FDs in "
        f"{sampled_seconds:7.2f}s "
        f"({sampled.rounds} round(s), final sample "
        f"{sampled.sample_size} tuples, "
        f"{sampled.verifications} verification scans)"
    )

    assert sampled.fds == direct, "sampling must be exact"
    print("covers are identical (exactness verified)")
    if sampled_seconds > 0:
        print(f"speedup: {direct_seconds / sampled_seconds:.1f}x")


if __name__ == "__main__":
    main()
