"""Quickstart: mine FDs and an Armstrong sample from a small relation.

Runs the paper's own worked example (sections 2-4) through the public
API and prints every artefact along the way.

    python examples/quickstart.py
"""

from repro import Relation, Schema, discover

# The employee/department assignment relation of the paper's example 1.
schema = Schema(["empnum", "depnum", "year", "depname", "mgr"])
relation = Relation.from_rows(
    schema,
    [
        (1, 1, 85, "Biochemistry", 5),
        (1, 5, 94, "Admission", 12),
        (2, 2, 92, "Computer Sce", 2),
        (3, 2, 98, "Computer Sce", 2),
        (4, 3, 98, "Geophysics", 2),
        (5, 1, 75, "Biochemistry", 5),
        (6, 5, 88, "Admission", 12),
    ],
)


def main():
    print("Input relation:")
    print(relation.to_text())
    print()

    # One call runs the whole Dep-Miner pipeline: stripped partitions ->
    # agree sets -> maximal sets -> minimal transversals -> FDs, plus
    # the real-world Armstrong relation from the same maximal sets.
    result = discover(relation)

    print(f"Agree sets ({len(result.agree_sets)}):")
    print("  " + ", ".join(s.compact() for s in result.agree_sets_view()))
    print()

    print("Maximal sets per attribute:")
    for name, sets in result.max_sets_view().items():
        family = "{" + ", ".join(s.compact() for s in sets) + "}"
        print(f"  max(dep(r), {name}) = {family}")
    print()

    print(f"Minimal non-trivial functional dependencies ({len(result.fds)}):")
    for fd in result.fds:
        print(f"  {fd}")
    print()

    print(
        f"Real-world Armstrong relation "
        f"({len(result.armstrong)} of {len(relation)} tuples, "
        f"same FDs, values from the input):"
    )
    print(result.armstrong.to_text())
    print()
    print(f"Phase timings: { {k: round(v, 6) for k, v in result.phase_seconds.items()} }")


if __name__ == "__main__":
    main()
