"""Logical tuning: the DBA workflow the paper motivates (section 1).

Given an existing denormalized table, the workflow is:

1. mine the minimal FDs with Dep-Miner;
2. inspect the *real-world Armstrong relation* — a tiny sample with the
   exact same dependency structure — to decide which FDs are genuine
   business rules rather than accidents of the current data;
3. compute candidate keys and check normal forms;
4. synthesize a 3NF (dependency-preserving) decomposition, and compare
   with the BCNF decomposition.

    python examples/logical_tuning.py
"""

from repro import discover
from repro.datasets import course_schedule_relation
from repro.fd import (
    candidate_keys,
    decompose_bcnf,
    derive,
    is_2nf,
    is_3nf,
    is_bcnf,
    minimal_cover,
    synthesize_3nf,
)


def main():
    relation = course_schedule_relation()
    schema = relation.schema
    print("Existing (denormalized) course schedule table:")
    print(relation.to_text())
    print()

    # Step 1: mine.
    result = discover(relation)
    print(f"Dep-Miner found {len(result.fds)} minimal FDs:")
    for fd in result.fds:
        print(f"  {fd}")
    print()

    # Step 2: the Armstrong sample the DBA would eyeball.
    if result.armstrong is not None:
        print(
            f"Real-world Armstrong sample ({len(result.armstrong)} of "
            f"{len(relation)} tuples — same FDs hold and fail):"
        )
        print(result.armstrong.to_text())
    else:
        print(
            "No real-world Armstrong relation exists (Proposition 1); "
            "classical construction instead:"
        )
        print(result.classical_armstrong.to_text())
    print()

    # The DBA keeps the dependencies that are real business rules.  Here
    # we keep a canonical cover of the mined FDs.
    cover = minimal_cover(result.fds)
    print("Canonical cover used for schema design:")
    for fd in cover:
        print(f"  {fd}")
    print()

    # Step 3: keys and normal forms.
    keys = candidate_keys(cover, schema)
    print("Candidate keys:", ", ".join(
        "(" + ", ".join(key.names) + ")" for key in keys
    ))
    print(f"2NF: {is_2nf(cover, schema)}   "
          f"3NF: {is_3nf(cover, schema)}   "
          f"BCNF: {is_bcnf(cover, schema)}")
    print()

    # Step 4: decompositions.
    print("3NF synthesis (lossless + dependency-preserving):")
    for fragment in synthesize_3nf(cover, schema):
        fds = "; ".join(str(fd) for fd in fragment.fds) or "(key fragment)"
        print(f"  {fragment}   with {fds}")
    print()
    print("BCNF decomposition (lossless):")
    for fragment in decompose_bcnf(cover, schema):
        print(f"  {fragment}")
    print()

    # Bonus: explain a mined FD with Armstrong's axioms.
    target = result.fds[0]
    proof = derive(cover, target)
    if proof is not None:
        print(proof.render())


if __name__ == "__main__":
    main()
