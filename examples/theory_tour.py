"""Theory tour: the lattice view behind Armstrong relations.

Walks the formal machinery of sections 2 and 4 on the paper's worked
example:

1. mine the minimal FDs;
2. build the closed-set lattice CL(F) and mark its meet-irreducible
   elements — these are exactly the maximal sets MAX(dep(r)) the miner
   found (GEN(F) = MAX(F), [MR86]);
3. annotate the real-world Armstrong relation row by row: which maximal
   set each row witnesses and which non-FDs it demonstrates;
4. derive one of the mined FDs from the canonical cover with Armstrong's
   axioms, as a numbered proof.

    python examples/theory_tour.py
"""

from repro import discover
from repro.datasets import paper_example_relation
from repro.explain import explain_armstrong
from repro.fd import build_lattice, derive, minimal_cover


def main():
    relation = paper_example_relation(short_names=True)
    result = discover(relation)

    print(f"Mined {len(result.fds)} minimal FDs from the worked example.")
    print()

    # The closed-set lattice.
    lattice = build_lattice(relation.schema, result.fds)
    print(lattice.render())
    print()
    generators = lattice.meet_irreducible()
    assert generators == result.max_union, "GEN(F) must equal MAX(dep(r))"
    print(
        "Meet-irreducible closed sets == the mined maximal sets: "
        + ", ".join(
            relation.schema.from_mask(mask).compact() for mask in generators
        )
    )
    print()

    # What every Armstrong-sample row proves.
    print("The real-world Armstrong relation, row by row:")
    for explanation in explain_armstrong(result):
        print(explanation.render())
    print()

    # An axiomatic proof of a mined FD from the canonical cover.
    cover = minimal_cover(result.fds)
    target = next(fd for fd in result.fds if str(fd) == "BC -> A")
    proof = derive(cover, target)
    print(proof.render())


if __name__ == "__main__":
    main()
