"""Warehouse audit: profile a whole directory of tables.

Simulates the paper's motivating scenario at the scale of a small data
warehouse: several denormalised tables land as CSV exports; the DBA
wants, for each, the dependency structure, the keys, the normal-form
status and a tiny Armstrong sample to eyeball — i.e. a profiling report
per table plus a one-line summary across the warehouse.

    python examples/warehouse_audit.py [directory]
"""

import sys
import tempfile
from pathlib import Path

from repro.datagen.realistic import write_bundle
from repro.report import profile_relation
from repro.storage import Database


def main():
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="warehouse-"))

    # Stage the warehouse exports (in reality these already exist).
    paths = write_bundle(workdir / "exports", seed=0)
    print("staged exports:")
    for path in paths:
        print(f"  {path}")

    # Load the whole directory into a catalog and profile every table.
    db = Database("warehouse")
    db.load_directory(workdir / "exports")

    reports = []
    for name in db.table_names():
        relation = db.table(name).to_relation()
        report = profile_relation(relation, name=name)
        reports.append(report)
        out = workdir / f"{name}_profile.md"
        out.write_text(report.to_markdown())
        print(f"\nwrote {out}")
        print("  " + report.summary_line())
        violating = [
            form for form, holds in report.normal_forms.items() if not holds
        ]
        if violating:
            print(f"  fails: {', '.join(violating)}; suggested fragments:")
            for fragment in report.decomposition:
                print(f"    {fragment}")

    # Cross-table structure: inclusion dependencies / FK candidates.
    from repro.ind import suggest_foreign_keys

    print("\nForeign-key candidates (INDs with unique rhs):")
    for ind in suggest_foreign_keys(db):
        print(f"  {ind}")

    print("\nWarehouse summary:")
    for report in reports:
        print("  " + report.summary_line())


if __name__ == "__main__":
    main()
