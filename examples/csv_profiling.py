"""CSV profiling: the storage layer end-to-end.

The original system pointed Dep-Miner at Oracle / MS Access tables over
ODBC; here the equivalent path is CSV -> Database catalog -> Query ->
mining.  The script writes a sample CSV, loads it, profiles columns,
mines FDs both on the full table and on a projected/filtered view, and
exports the Armstrong sample back to CSV.

    python examples/csv_profiling.py [directory]
"""

import sys
import tempfile
from pathlib import Path

from repro.datasets import supplier_parts_relation
from repro.storage import Database, Query, relation_to_csv, write_csv
from repro.storage.table import Table


def main():
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="depminer-"))
    workdir.mkdir(parents=True, exist_ok=True)

    # Stage a CSV file (in reality this is an existing data export).
    source = workdir / "supplier_parts.csv"
    relation_to_csv(supplier_parts_relation(), source)
    print(f"staged {source}")

    # Load it into the catalog and profile the columns.
    db = Database("warehouse")
    table = db.load_csv(source)
    print(f"\nColumn profile of {table.name!r} ({len(table)} rows):")
    for name, stats in table.profile().items():
        print(
            f"  {name:<8} type={stats['type']:<6} "
            f"distinct={stats['distinct']:<3} nulls={stats['nulls']}"
        )

    # Mine the whole table.
    result = db.discover_fds("supplier_parts")
    print(f"\nMinimal FDs of the full table ({len(result.fds)}):")
    for fd in result.fds:
        print(f"  {fd}")

    # Mine a projected view: does the supplier part of the schema keep
    # the same structure?
    view = (
        Query(table)
        .select("sno", "sname", "status", "city")
        .distinct()
        .to_relation()
    )
    from repro import discover

    view_result = discover(view)
    print(f"\nMinimal FDs of the supplier view ({len(view_result.fds)}):")
    for fd in view_result.fds:
        print(f"  {fd}")

    # Export the Armstrong sample of the full table.
    if result.armstrong is not None:
        sample_path = workdir / "supplier_parts_armstrong.csv"
        write_csv(
            Table.from_relation("armstrong", result.armstrong), sample_path
        )
        print(
            f"\nwrote the {len(result.armstrong)}-tuple Armstrong sample "
            f"to {sample_path}"
        )
    else:
        print("\n(no real-world Armstrong relation exists for this table)")


if __name__ == "__main__":
    main()
