"""Benchmark shootout: Dep-Miner vs Dep-Miner 2 vs TANE (section 5).

Generates the paper's synthetic benchmark relations at a laptop-friendly
scale and prints the comparison in the layout of Tables 3-5, plus the
speedup matrix.  For the full grids behind every table and figure, use
the harness CLI:

    python -m repro bench --experiment table3 --scale small

This script:

    python examples/benchmark_shootout.py [--rows 2000] [--attrs 10 20]
"""

import argparse

from repro.bench import (
    armstrong_table,
    run_grid,
    speedup_table,
    times_table,
)
from repro.datagen.workloads import WorkloadGrid


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, nargs="+",
                        default=[500, 1000, 2000])
    parser.add_argument("--attrs", type=int, nargs="+", default=[5, 10, 15])
    parser.add_argument("--correlation", type=float, default=0.5,
                        help="the paper's c parameter (0 disables)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    correlation = args.correlation if args.correlation else None
    grid = WorkloadGrid(
        name="shootout",
        correlation=correlation,
        attribute_counts=tuple(args.attrs),
        tuple_counts=tuple(args.rows),
        seed=args.seed,
    )
    print(
        f"Running {len(grid.specs())} cells x 3 algorithms "
        f"(c = {correlation}) ...\n"
    )
    result = run_grid(grid, progress=print)
    print()
    print(times_table(result))
    print()
    print(armstrong_table(result))
    print()
    print(speedup_table(result, baseline="tane", subject="depminer"))
    print()
    print(speedup_table(result, baseline="tane", subject="depminer2"))


if __name__ == "__main__":
    main()
