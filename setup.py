"""Legacy entry point so `pip install -e . --no-use-pep517` works on
environments without the `wheel` package (configuration in pyproject.toml)."""

from setuptools import setup

setup()
