"""Phase breakdown: which stage of Algorithm 1 dominates.

Benchmarks each Dep-Miner phase in isolation on the same inputs: the
strip pass, the two agree-set algorithms, the maximal-set derivation and
the levelwise transversal search.  On correlated data the agree-set
stage dominates at large |r|, the transversal stage at large |R| — the
two axes along which the paper's evaluation (and our EXPERIMENTS.md
notes) move.

The ``sharded`` group benchmarks the same two dominant phases through
the :mod:`repro.parallel` execution layer, at every jobs value in
``REPRO_BENCH_JOBS``.  The workload is environment-parameterised so the
speedup criterion can be demonstrated on real multi-core hardware
without editing the file::

    REPRO_BENCH_ROWS=50000 REPRO_BENCH_ATTRS=12 REPRO_BENCH_JOBS=1,4 \
        pytest benchmarks/bench_phase_breakdown.py --benchmark-only

The defaults stay CI-friendly (1000 rows, jobs 1 and 2); on a
single-core runner the jobs>1 cases measure pure overhead, which is
itself worth tracking.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import cached_relation
from repro.core.agree_sets import (
    agree_sets_from_couples,
    agree_sets_from_identifiers,
)
from repro.core.lhs import left_hand_sides
from repro.core.maximal_sets import complement_maximal_sets, maximal_sets
from repro.parallel import (
    ShardedExecutor,
    parallel_agree_sets,
    parallel_cmax_lhs,
)
from repro.partitions.database import StrippedPartitionDatabase

ATTRS = int(os.environ.get("REPRO_BENCH_ATTRS", "10"))
ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "1000"))
CORRELATION = float(os.environ.get("REPRO_BENCH_CORRELATION", "0.5"))
JOBS_VALUES = [
    int(j) for j in os.environ.get("REPRO_BENCH_JOBS", "1,2").split(",")
]


@pytest.fixture(scope="module")
def inputs():
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    spdb = StrippedPartitionDatabase.from_relation(relation)
    agree = agree_sets_from_couples(spdb)
    schema = relation.schema
    max_sets = maximal_sets(agree, schema)
    cmax = complement_maximal_sets(max_sets, schema)
    return relation, spdb, agree, schema, cmax


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_strip(benchmark, inputs):
    relation = inputs[0]
    benchmark(StrippedPartitionDatabase.from_relation, relation)


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_agree_couples(benchmark, inputs):
    spdb = inputs[1]
    benchmark(agree_sets_from_couples, spdb)


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_agree_identifiers(benchmark, inputs):
    spdb = inputs[1]
    benchmark(agree_sets_from_identifiers, spdb)


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_max_sets(benchmark, inputs):
    _relation, _spdb, agree, schema, _cmax = inputs
    benchmark(maximal_sets, agree, schema)


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_transversals(benchmark, inputs):
    *_rest, schema, cmax = inputs
    benchmark(left_hand_sides, cmax, schema)


@pytest.mark.benchmark(group="sharded")
@pytest.mark.parametrize("jobs", JOBS_VALUES)
def test_sharded_agree_couples(benchmark, inputs, jobs):
    spdb = inputs[1]
    executor = ShardedExecutor(jobs=jobs)
    result = benchmark(parallel_agree_sets, spdb, executor)
    assert result == inputs[2]


@pytest.mark.benchmark(group="sharded")
@pytest.mark.parametrize("jobs", JOBS_VALUES)
def test_sharded_cmax_transversals(benchmark, inputs, jobs):
    _relation, _spdb, agree, schema, cmax = inputs
    executor = ShardedExecutor(jobs=jobs)
    agree_list = sorted(agree)
    _max_sets, cmax_out, lhs = benchmark(
        parallel_cmax_lhs, agree_list, schema, executor
    )
    assert cmax_out == cmax
    assert lhs == left_hand_sides(cmax, schema)
