"""Phase breakdown: which stage of Algorithm 1 dominates.

Benchmarks each Dep-Miner phase in isolation on the same inputs: the
strip pass, the two agree-set algorithms, the maximal-set derivation and
the levelwise transversal search.  On correlated data the agree-set
stage dominates at large |r|, the transversal stage at large |R| — the
two axes along which the paper's evaluation (and our EXPERIMENTS.md
notes) move.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_relation
from repro.core.agree_sets import (
    agree_sets_from_couples,
    agree_sets_from_identifiers,
)
from repro.core.lhs import left_hand_sides
from repro.core.maximal_sets import complement_maximal_sets, maximal_sets
from repro.partitions.database import StrippedPartitionDatabase

ATTRS = 10
ROWS = 1000
CORRELATION = 0.5


@pytest.fixture(scope="module")
def inputs():
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    spdb = StrippedPartitionDatabase.from_relation(relation)
    agree = agree_sets_from_couples(spdb)
    schema = relation.schema
    max_sets = maximal_sets(agree, schema)
    cmax = complement_maximal_sets(max_sets, schema)
    return relation, spdb, agree, schema, cmax


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_strip(benchmark, inputs):
    relation = inputs[0]
    benchmark(StrippedPartitionDatabase.from_relation, relation)


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_agree_couples(benchmark, inputs):
    spdb = inputs[1]
    benchmark(agree_sets_from_couples, spdb)


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_agree_identifiers(benchmark, inputs):
    spdb = inputs[1]
    benchmark(agree_sets_from_identifiers, spdb)


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_max_sets(benchmark, inputs):
    _relation, _spdb, agree, schema, _cmax = inputs
    benchmark(maximal_sets, agree, schema)


@pytest.mark.benchmark(group="phase-breakdown")
def test_phase_transversals(benchmark, inputs):
    *_rest, schema, cmax = inputs
    benchmark(left_hand_sides, cmax, schema)
