"""Ablation: bitmask attribute sets vs frozensets.

The paper implements attribute sets as bit vectors "to provide set
operations in constant time"; this micro-benchmark justifies mirroring
that with int bitmasks instead of Python frozensets, on the operation
mix the miners actually perform (union, intersection-emptiness, subset
tests during maximality filtering).
"""

from __future__ import annotations

import random

import pytest

WIDTH = 30
COUNT = 400

random_masks = [
    random.Random(i).getrandbits(WIDTH) or 1 for i in range(COUNT)
]
random_frozensets = [
    frozenset(
        bit for bit in range(WIDTH) if mask & (1 << bit)
    )
    for mask in random_masks
]


def mix_bitmask(masks):
    total = 0
    for x in masks:
        for y in masks:
            if x & y:
                total += 1
            if x | y == y:  # x subset of y
                total += 1
    return total


def mix_frozenset(sets):
    total = 0
    for x in sets:
        for y in sets:
            if x & y:
                total += 1
            if x <= y:
                total += 1
    return total


@pytest.mark.benchmark(group="ablation-attrset")
def test_attrset_bitmask(benchmark):
    benchmark(mix_bitmask, random_masks)


@pytest.mark.benchmark(group="ablation-attrset")
def test_attrset_frozenset(benchmark):
    benchmark(mix_frozenset, random_frozensets)
