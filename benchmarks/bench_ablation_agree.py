"""Ablation: agree-set algorithms (naive vs Algorithm 2 vs Algorithm 3).

The core claim of section 3.1: computing agree sets from the maximal
equivalence classes of a stripped partition database beats the naive
all-pairs scan, and the identifier-set variant (Algorithm 3) trades a
per-couple win for an indexing cost.  The naive baseline is benchmarked
at a smaller row count — it is O(n * p^2) and exists to show the gap.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_relation
from repro.core.agree_sets import (
    agree_sets_from_couples,
    agree_sets_from_identifiers,
    naive_agree_sets,
)
from repro.partitions.database import StrippedPartitionDatabase

CORRELATION = 0.50
ATTRS = 8
ROWS = 500


@pytest.fixture(scope="module")
def spdb():
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    return StrippedPartitionDatabase.from_relation(relation)


@pytest.mark.benchmark(group="ablation-agree-sets")
def test_agree_naive(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    benchmark(naive_agree_sets, relation)


@pytest.mark.benchmark(group="ablation-agree-sets")
def test_agree_couples_algorithm2(benchmark, spdb):
    benchmark(agree_sets_from_couples, spdb)


@pytest.mark.benchmark(group="ablation-agree-sets")
def test_agree_identifiers_algorithm3(benchmark, spdb):
    benchmark(agree_sets_from_identifiers, spdb)


@pytest.mark.benchmark(group="ablation-agree-sets")
def test_agree_vectorized(benchmark, spdb):
    from repro.core.agree_fast import agree_sets_vectorized

    benchmark(agree_sets_vectorized, spdb)
