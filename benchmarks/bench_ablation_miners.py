"""Ablation: all four miners on one cell (Dep-Miner, Dep-Miner 2, TANE,
FDEP).

The paper compares three; FDEP [SF93] is the fourth, sharing Dep-Miner's
negative-cover front end but replacing the transversal search with
hypothesis specialization.  All four produce the identical minimal FD
cover (asserted), so the group compares pure algorithmic cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_relation
from repro.core.depminer import DepMiner
from repro.fdep import Fdep
from repro.tane.tane import Tane

ATTRS = 10
ROWS = 500
CORRELATION = 0.5

_EXPECTED = None


def expected_fds():
    global _EXPECTED
    if _EXPECTED is None:
        relation = cached_relation(ATTRS, ROWS, CORRELATION)
        _EXPECTED = DepMiner(build_armstrong="none").run(relation).fds
    return _EXPECTED


@pytest.mark.benchmark(group="ablation-miners")
def test_miner_depminer(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    miner = DepMiner(build_armstrong="none")
    result = benchmark(miner.run, relation)
    assert result.fds == expected_fds()


@pytest.mark.benchmark(group="ablation-miners")
def test_miner_depminer2(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    miner = DepMiner(build_armstrong="none", agree_algorithm="identifiers")
    result = benchmark(miner.run, relation)
    assert result.fds == expected_fds()


@pytest.mark.benchmark(group="ablation-miners")
def test_miner_tane(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    result = benchmark(Tane().run, relation)
    assert result.fds == expected_fds()


@pytest.mark.benchmark(group="ablation-miners")
def test_miner_fdep(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    result = benchmark(Fdep().run, relation)
    assert result.fds == expected_fds()
