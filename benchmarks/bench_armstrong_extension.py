"""Section 5.1's claim: Dep-Miner builds Armstrong relations "for free",
while extending TANE requires an extra transversal pass afterwards.

Benchmarks the two full pipelines producing *both* the FD cover and the
real-world Armstrong relation, plus the extension step in isolation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_relation
from repro.core.depminer import DepMiner
from repro.tane.armstrong_ext import cmax_from_lhs, tane_with_armstrong
from repro.tane.tane import Tane

CORRELATION = 0.50
ATTRS = 10
ROWS = 500


@pytest.mark.benchmark(group="armstrong-extension")
def test_depminer_with_armstrong(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    benchmark(DepMiner().run, relation)


@pytest.mark.benchmark(group="armstrong-extension")
def test_tane_with_armstrong(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    benchmark(tane_with_armstrong, relation)


@pytest.mark.benchmark(group="armstrong-extension")
def test_extension_step_alone(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    lhs_sets = Tane().run(relation).lhs_sets()
    benchmark(cmax_from_lhs, lhs_sets, ATTRS)
