"""Ablation: the couple-memory threshold of Algorithm 2 (section 3.1).

The paper bounds memory by resolving couples in chunks once a threshold
is reached, at the cost of re-scanning state per chunk.  This sweep
shows the time overhead as the threshold shrinks (the paper observed the
same effect at 100k tuples, where chunking made Dep-Miner exceed its
two-hour budget).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_relation
from repro.core.agree_sets import agree_sets_from_couples
from repro.partitions.database import StrippedPartitionDatabase

CORRELATION = 0.50
ATTRS = 8
ROWS = 500


@pytest.fixture(scope="module")
def spdb():
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    return StrippedPartitionDatabase.from_relation(relation)


@pytest.mark.benchmark(group="ablation-chunking")
@pytest.mark.parametrize("max_couples", [None, 4096, 256, 16])
def test_chunking_threshold(benchmark, spdb, max_couples):
    benchmark.extra_info["max_couples"] = str(max_couples)
    benchmark(agree_sets_from_couples, spdb, max_couples)
