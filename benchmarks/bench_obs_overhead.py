"""Overhead guard for the ``repro.obs`` instrumentation.

Compares four ways of running the Dep-Miner pipeline over the Table-3
benchmark cells (the same |R| x |r| grid as ``bench_table3.py``):

- **baseline** — the five pipeline steps called directly, with no
  observability wiring at all (the pre-``repro.obs`` shape of
  ``DepMiner.run``, minus its per-phase clock reads);
- **default** — ``DepMiner().run``: a private enabled tracer collects
  the ~9 coarse phase spans, metrics and progress are no-ops;
- **disabled** — ``DepMiner(tracer=NULL_TRACER).run``: even the phase
  spans are no-op singletons;
- **telemetry** — the full ``--telemetry`` stack: one enabled
  :class:`~repro.obs.Tracer` + :class:`~repro.obs.MetricsRegistry` +
  background :class:`~repro.obs.resources.ResourceSampler` per grid
  sweep, finished by a :class:`~repro.obs.manifest.RunManifest` build
  (serialization excluded — that is I/O, not instrumentation).

The test asserts every instrumented path stays within 2% of the
baseline (min-of-repeats timings; a 4 ms absolute floor absorbs
scheduler noise on runs this short — the whole grid completes in tens
of milliseconds, and shared CI runners show variant-to-variant swings
of ±1.5 ms even at min-of-60, so sub-floor deltas are unresolvable
there; on second-scale runs the 2% ratio is the binding budget).

Run as a script to (re)generate the committed baseline document::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [BENCH_obs.json]

``REPRO_BENCH_OBS_REPEATS`` overrides the repeat count (the regression
gate's hermetic tests shrink it).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.core.agree_sets import agree_sets
from repro.core.armstrong import (
    classical_armstrong,
    real_world_armstrong,
    real_world_armstrong_exists,
)
from repro.core.depminer import DepMiner
from repro.core.lhs import fd_output, left_hand_sides
from repro.core.maximal_sets import (
    complement_maximal_sets,
    max_set_union,
    maximal_sets,
)
from repro.core.relation import Relation
from repro.datagen.synthetic import generate_relation
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    ResourceSampler,
    RunManifest,
    Tracer,
)
from repro.partitions.database import StrippedPartitionDatabase

# The Table-3 grid at benchmark scale ("without constraints").
CELLS: Tuple[Tuple[int, int], ...] = ((5, 200), (5, 500), (10, 200),
                                      (10, 500))
REPEATS = int(os.environ.get("REPRO_BENCH_OBS_REPEATS", "40"))
MAX_OVERHEAD_RATIO = 0.02
#: Noise floor, not a budget: on the ~20 ms grid, shared runners swing
#: individual variants by ±1.5 ms run to run, so overhead deltas below
#: this are measurement artifacts.  The ratio above governs any run
#: long enough for the floor not to matter.
ABSOLUTE_SLACK_SECONDS = 0.004


def _baseline_pipeline(relation: Relation) -> None:
    """The seed-equivalent pipeline: no spans, metrics or progress."""
    spdb = StrippedPartitionDatabase.from_relation(relation)
    schema = spdb.schema
    mc = spdb.maximal_classes()
    agree = agree_sets(spdb, mc=mc)
    max_sets = maximal_sets(agree, schema)
    cmax = complement_maximal_sets(max_sets, schema)
    lhs_sets = left_hand_sides(cmax, schema)
    fd_output(lhs_sets, schema)
    union = max_set_union(max_sets)
    classical_armstrong(schema, union)
    if real_world_armstrong_exists(relation, union):
        real_world_armstrong(relation, union)


def _baseline_sweep(relations: List[Relation]) -> None:
    for relation in relations:
        _baseline_pipeline(relation)


def _default_sweep(relations: List[Relation]) -> None:
    for relation in relations:
        DepMiner().run(relation)


def _disabled_sweep(relations: List[Relation]) -> None:
    for relation in relations:
        DepMiner(tracer=NULL_TRACER).run(relation)


def _telemetry_sweep(relations: List[Relation]) -> None:
    """One ``--telemetry`` CLI run's worth of instrumentation per sweep."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    with ResourceSampler(tracer=tracer) as sampler:
        miner = DepMiner(tracer=tracer, metrics=metrics)
        for relation in relations:
            miner.run(relation)
    RunManifest.build("bench-obs-overhead", tracer=tracer, metrics=metrics,
                      resources=sampler)


#: Each variant runs one whole grid sweep — the unit a CLI invocation
#: would instrument (the telemetry variant pays its sampler start/stop
#: and manifest build once per sweep, exactly like ``repro discover``).
VARIANTS: Dict[str, Callable[[List[Relation]], None]] = {
    "baseline": _baseline_sweep,
    "default": _default_sweep,
    "disabled": _disabled_sweep,
    "telemetry": _telemetry_sweep,
}


def _grid() -> List[Relation]:
    return [
        generate_relation(attrs, rows, correlation=None, seed=0)
        for attrs, rows in CELLS
    ]


def measure(repeats: int = REPEATS) -> Dict[str, float]:
    """Min-of-*repeats* seconds for one full grid sweep, per variant.

    Variants are interleaved within each repeat so cache warm-up and
    frequency scaling hit all four alike.
    """
    relations = _grid()
    best = {name: float("inf") for name in VARIANTS}
    for _ in range(repeats):
        for name, sweep in VARIANTS.items():
            start = time.perf_counter()
            sweep(relations)
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def overhead_report(timings: Dict[str, float]) -> Dict[str, object]:
    baseline = timings["baseline"]
    return {
        "workload": {
            "cells": [list(cell) for cell in CELLS],
            "correlation": None,
            "repeats": REPEATS,
        },
        "seconds": {name: round(value, 6)
                    for name, value in timings.items()},
        "overhead_vs_baseline": {
            name: round((timings[name] - baseline) / baseline, 4)
            for name in ("default", "disabled", "telemetry")
        },
        "budget": {
            "max_ratio": MAX_OVERHEAD_RATIO,
            "absolute_slack_seconds": ABSOLUTE_SLACK_SECONDS,
        },
    }


def test_instrumentation_overhead_is_within_budget():
    timings = measure()
    baseline = timings["baseline"]
    allowed = max(baseline * MAX_OVERHEAD_RATIO, ABSOLUTE_SLACK_SECONDS)
    for name in ("default", "disabled", "telemetry"):
        overhead = timings[name] - baseline
        assert overhead <= allowed, (
            f"{name} pipeline exceeded the overhead budget: "
            f"{timings[name]:.4f}s vs baseline {baseline:.4f}s "
            f"(+{overhead:.4f}s, allowed {allowed:.4f}s)"
        )


def test_variants_compute_the_same_cover():
    relation = _grid()[0]
    fds = {
        tuple(sorted(str(fd) for fd in DepMiner(tracer=tracer).run(
            relation).fds))
        for tracer in (None, NULL_TRACER)
    }
    assert len(fds) == 1


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "BENCH_obs.json"
    report = overhead_report(measure())
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
