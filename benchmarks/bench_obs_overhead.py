"""Overhead guard for the ``repro.obs`` instrumentation.

Compares three ways of running the Dep-Miner pipeline over the Table-3
benchmark cells (the same |R| x |r| grid as ``bench_table3.py``):

- **baseline** — the five pipeline steps called directly, with no
  observability wiring at all (the pre-``repro.obs`` shape of
  ``DepMiner.run``, minus its per-phase clock reads);
- **default** — ``DepMiner().run``: a private enabled tracer collects
  the ~9 coarse phase spans, metrics and progress are no-ops;
- **disabled** — ``DepMiner(tracer=NULL_TRACER).run``: even the phase
  spans are no-op singletons.

The test asserts the instrumented paths stay within 2% of the baseline
(min-of-repeats timings; a 2 ms absolute floor absorbs scheduler noise
on runs this short — the whole grid completes in tens of milliseconds).

Run as a script to (re)generate the committed baseline document::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [BENCH_obs.json]
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.core.agree_sets import agree_sets
from repro.core.armstrong import (
    classical_armstrong,
    real_world_armstrong,
    real_world_armstrong_exists,
)
from repro.core.depminer import DepMiner
from repro.core.lhs import fd_output, left_hand_sides
from repro.core.maximal_sets import (
    complement_maximal_sets,
    max_set_union,
    maximal_sets,
)
from repro.core.relation import Relation
from repro.datagen.synthetic import generate_relation
from repro.obs import NULL_TRACER
from repro.partitions.database import StrippedPartitionDatabase

# The Table-3 grid at benchmark scale ("without constraints").
CELLS: Tuple[Tuple[int, int], ...] = ((5, 200), (5, 500), (10, 200),
                                      (10, 500))
REPEATS = 20
MAX_OVERHEAD_RATIO = 0.02
ABSOLUTE_SLACK_SECONDS = 0.002


def _baseline_pipeline(relation: Relation) -> None:
    """The seed-equivalent pipeline: no spans, metrics or progress."""
    spdb = StrippedPartitionDatabase.from_relation(relation)
    schema = spdb.schema
    mc = spdb.maximal_classes()
    agree = agree_sets(spdb, mc=mc)
    max_sets = maximal_sets(agree, schema)
    cmax = complement_maximal_sets(max_sets, schema)
    lhs_sets = left_hand_sides(cmax, schema)
    fd_output(lhs_sets, schema)
    union = max_set_union(max_sets)
    classical_armstrong(schema, union)
    if real_world_armstrong_exists(relation, union):
        real_world_armstrong(relation, union)


def _default_pipeline(relation: Relation) -> None:
    DepMiner().run(relation)


def _disabled_pipeline(relation: Relation) -> None:
    DepMiner(tracer=NULL_TRACER).run(relation)


VARIANTS: Dict[str, Callable[[Relation], None]] = {
    "baseline": _baseline_pipeline,
    "default": _default_pipeline,
    "disabled": _disabled_pipeline,
}


def _grid() -> List[Relation]:
    return [
        generate_relation(attrs, rows, correlation=None, seed=0)
        for attrs, rows in CELLS
    ]


def measure(repeats: int = REPEATS) -> Dict[str, float]:
    """Min-of-*repeats* seconds for one full grid sweep, per variant.

    Variants are interleaved within each repeat so cache warm-up and
    frequency scaling hit all three alike.
    """
    relations = _grid()
    best = {name: float("inf") for name in VARIANTS}
    for _ in range(repeats):
        for name, run in VARIANTS.items():
            start = time.perf_counter()
            for relation in relations:
                run(relation)
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def overhead_report(timings: Dict[str, float]) -> Dict[str, object]:
    baseline = timings["baseline"]
    return {
        "workload": {
            "cells": [list(cell) for cell in CELLS],
            "correlation": None,
            "repeats": REPEATS,
        },
        "seconds": {name: round(value, 6)
                    for name, value in timings.items()},
        "overhead_vs_baseline": {
            name: round((timings[name] - baseline) / baseline, 4)
            for name in ("default", "disabled")
        },
        "budget": {
            "max_ratio": MAX_OVERHEAD_RATIO,
            "absolute_slack_seconds": ABSOLUTE_SLACK_SECONDS,
        },
    }


def test_instrumentation_overhead_is_within_budget():
    timings = measure()
    baseline = timings["baseline"]
    allowed = max(baseline * MAX_OVERHEAD_RATIO, ABSOLUTE_SLACK_SECONDS)
    for name in ("default", "disabled"):
        overhead = timings[name] - baseline
        assert overhead <= allowed, (
            f"{name} pipeline exceeded the overhead budget: "
            f"{timings[name]:.4f}s vs baseline {baseline:.4f}s "
            f"(+{overhead:.4f}s, allowed {allowed:.4f}s)"
        )


def test_variants_compute_the_same_cover():
    relation = _grid()[0]
    fds = {
        tuple(sorted(str(fd) for fd in DepMiner(tracer=tracer).run(
            relation).fds))
        for tracer in (None, NULL_TRACER)
    }
    assert len(fds) == 1


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "BENCH_obs.json"
    report = overhead_report(measure())
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
