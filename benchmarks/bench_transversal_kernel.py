"""Speedup guard for the layered transversal kernel.

Times the ``LEFT_HAND_SIDE`` transversal stage in isolation on the cmax
hypergraph families of a **wide-schema** correlated relation — the
regime (Figures 5-7 of the paper) where the levelwise search dominates
Dep-Miner's runtime:

- **legacy** — ``minimal_transversals_levelwise`` (Algorithm 5 as the
  paper states it: per-candidate ``O(|edges|)`` rescans);
- **kernel** — ``minimal_transversals_kernel`` (reduction pass +
  incremental-coverage core, pure-Python backend);
- **vectorized** — the same kernel with the NumPy lane-packed backend.

The tests assert the acceptance floors of the kernel work: both kernel
backends ≥ 3× the legacy search on the wide workload, with bit-for-bit
identical transversal families — and, end to end, identical FD covers
through :class:`~repro.core.depminer.DepMiner` across all transversal
algorithms at ``jobs`` 1 and 2.  Timings are min-of-repeats; the cmax
families are mined once (partitions → agree sets → max/cmax) so the
timers see only the transversal stage.

The workload is environment-parameterised::

    REPRO_BENCH_TRANSVERSAL_ATTRS=26 REPRO_BENCH_TRANSVERSAL_ROWS=500 \
        PYTHONPATH=src python benchmarks/bench_transversal_kernel.py \
        [BENCH_transversal.json]

Run as a script to (re)generate the committed ``BENCH_transversal.json``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List

from repro.core.agree_sets import agree_sets
from repro.core.depminer import DepMiner
from repro.core.maximal_sets import maximal_sets_for_attribute
from repro.datagen.synthetic import generate_relation
from repro.hypergraph.kernel import minimal_transversals_kernel
from repro.hypergraph.transversals import minimal_transversals_levelwise
from repro.partitions.database import StrippedPartitionDatabase

ATTRS = int(os.environ.get("REPRO_BENCH_TRANSVERSAL_ATTRS", "30"))
ROWS = int(os.environ.get("REPRO_BENCH_TRANSVERSAL_ROWS", "800"))
CORRELATION = float(
    os.environ.get("REPRO_BENCH_TRANSVERSAL_CORRELATION", "0.6")
)
REPEATS = int(os.environ.get("REPRO_BENCH_TRANSVERSAL_REPEATS", "3"))

MIN_KERNEL_SPEEDUP = 3.0
MIN_VECTORIZED_SPEEDUP = 3.0

#: The end-to-end cover-equivalence sweep (smaller: it runs the full
#: pipeline once per algorithm per jobs value).
COVER_ATTRS = int(os.environ.get("REPRO_BENCH_TRANSVERSAL_COVER_ATTRS",
                                 "12"))
COVER_ROWS = int(os.environ.get("REPRO_BENCH_TRANSVERSAL_COVER_ROWS",
                                "400"))
COVER_ALGORITHMS = ("kernel", "vectorized", "levelwise", "berge", "dfs")


def _cmax_families() -> List[List[int]]:
    """The per-RHS cmax hypergraphs of the wide workload, mined once."""
    relation = generate_relation(ATTRS, ROWS, correlation=CORRELATION,
                                 seed=0)
    spdb = StrippedPartitionDatabase.from_relation(relation)
    agree = sorted(agree_sets(spdb))
    universe = relation.schema.universe_mask
    families = []
    for attribute in range(ATTRS):
        max_masks = maximal_sets_for_attribute(agree, attribute)
        families.append(sorted(universe & ~mask for mask in max_masks))
    return families


def measure(repeats: int = REPEATS) -> Dict[str, object]:
    """Min-of-*repeats* seconds per algorithm over all cmax families."""
    families = _cmax_families()
    runners = {
        "legacy": lambda edges: minimal_transversals_levelwise(edges, ATTRS),
        "kernel": lambda edges: minimal_transversals_kernel(edges, ATTRS),
        "vectorized": lambda edges: minimal_transversals_kernel(
            edges, ATTRS, backend="vectorized"
        ),
    }
    best = {name: float("inf") for name in runners}
    outputs: Dict[str, List[List[int]]] = {}
    for _ in range(repeats):
        for name, run in runners.items():
            start = time.perf_counter()
            outputs[name] = [run(edges) for edges in families]
            best[name] = min(best[name], time.perf_counter() - start)
    return {
        "seconds": best,
        "outputs": outputs,
        "num_families": len(families),
        "num_edges": sum(len(edges) for edges in families),
    }


def end_to_end_covers() -> Dict[str, List[tuple]]:
    """FD covers per (algorithm, jobs) through the full pipeline."""
    relation = generate_relation(COVER_ATTRS, COVER_ROWS,
                                 correlation=CORRELATION, seed=1)
    covers = {}
    for algorithm in COVER_ALGORITHMS:
        for jobs in (1, 2):
            result = DepMiner(build_armstrong="none",
                              transversal_algorithm=algorithm,
                              jobs=jobs).run(relation)
            covers[f"{algorithm}-jobs{jobs}"] = sorted(
                (fd.lhs.mask, fd.rhs_index) for fd in result.fds
            )
    return covers


def report(measured: Dict[str, object]) -> Dict[str, object]:
    seconds = measured["seconds"]
    covers = end_to_end_covers()
    reference = covers["levelwise-jobs1"]
    return {
        "workload": {
            "attrs": ATTRS,
            "rows": ROWS,
            "correlation": CORRELATION,
            "repeats": REPEATS,
            "num_families": measured["num_families"],
            "num_edges": measured["num_edges"],
        },
        "seconds": {name: round(value, 6)
                    for name, value in seconds.items()},
        "speedup": {
            "kernel_vs_legacy": round(
                seconds["legacy"] / seconds["kernel"], 2
            ),
            "vectorized_vs_legacy": round(
                seconds["legacy"] / seconds["vectorized"], 2
            ),
        },
        "floors": {
            "kernel_vs_legacy": MIN_KERNEL_SPEEDUP,
            "vectorized_vs_legacy": MIN_VECTORIZED_SPEEDUP,
        },
        "transversals_identical": (
            measured["outputs"]["legacy"]
            == measured["outputs"]["kernel"]
            == measured["outputs"]["vectorized"]
        ),
        "covers_identical_across_algorithms_and_jobs": all(
            cover == reference for cover in covers.values()
        ),
        "cover_workload": {
            "attrs": COVER_ATTRS,
            "rows": COVER_ROWS,
            "num_fds": len(reference),
            "cells": sorted(covers),
        },
    }


def test_all_algorithms_compute_the_same_transversals():
    outputs = measure(repeats=1)["outputs"]
    assert outputs["legacy"] == outputs["kernel"]
    assert outputs["legacy"] == outputs["vectorized"]


def test_covers_identical_across_algorithms_and_jobs():
    covers = end_to_end_covers()
    reference = covers["levelwise-jobs1"]
    assert reference  # a non-trivial workload
    for cell, cover in covers.items():
        assert cover == reference, f"{cell} diverged from levelwise-jobs1"


def test_kernel_speedup_floor():
    seconds = measure()["seconds"]
    speedup = seconds["legacy"] / seconds["kernel"]
    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"kernel only {speedup:.1f}x faster than the legacy levelwise "
        f"search (legacy {seconds['legacy']:.4f}s, kernel "
        f"{seconds['kernel']:.4f}s; floor {MIN_KERNEL_SPEEDUP}x)"
    )


def test_vectorized_speedup_floor():
    seconds = measure()["seconds"]
    speedup = seconds["legacy"] / seconds["vectorized"]
    assert speedup >= MIN_VECTORIZED_SPEEDUP, (
        f"vectorized kernel only {speedup:.1f}x faster than the legacy "
        f"levelwise search (legacy {seconds['legacy']:.4f}s, vectorized "
        f"{seconds['vectorized']:.4f}s; floor {MIN_VECTORIZED_SPEEDUP}x)"
    )


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "BENCH_transversal.json"
    document = report(measure())
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
