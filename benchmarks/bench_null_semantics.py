"""Extension benchmark: cost of SQL null semantics vs null-equals-null.

SQL semantics drop null rows from every stripped class, which shrinks
the couple space — on null-heavy data profiling gets cheaper, not more
expensive.
"""

from __future__ import annotations

import random

import pytest

from repro.core.attributes import Schema
from repro.core.depminer import DepMiner
from repro.core.relation import Relation

ATTRS = 8
ROWS = 1000


def null_heavy_relation() -> Relation:
    rng = random.Random(42)
    schema = Schema.of_width(ATTRS)
    rows = [
        tuple(
            None if rng.random() < 0.3 else rng.randrange(50)
            for _ in range(ATTRS)
        )
        for _ in range(ROWS)
    ]
    return Relation.from_rows(schema, rows)


RELATION = null_heavy_relation()


@pytest.mark.benchmark(group="null-semantics")
def test_nulls_equal(benchmark):
    miner = DepMiner(build_armstrong="none", nulls_equal=True)
    benchmark(miner.run, RELATION)


@pytest.mark.benchmark(group="null-semantics")
def test_nulls_distinct(benchmark):
    miner = DepMiner(build_armstrong="none", nulls_equal=False)
    benchmark(miner.run, RELATION)
