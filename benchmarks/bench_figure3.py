"""Figure 3: sizes of real-world Armstrong relations vs |r|, no constraints.

The figure plots Armstrong sizes, not times, so each benchmark times the
ARMSTRONG_RELATION step alone (the construction from maximal sets,
step 5 of Algorithm 1) and records the resulting size per (|R|, |r|)
point in ``extra_info``.  The shape assertions check the paper's
headline observation: the sample is orders of magnitude smaller than
the input and grows slowly with |r|.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FIGURE_ROWS, cached_relation
from repro.bench.harness import ALGORITHM_LABELS
from repro.core.armstrong import real_world_armstrong
from repro.core.depminer import DepMiner

CORRELATION = None
ATTRS = (5, 10)


@pytest.mark.benchmark(group="fig3-sizes")
@pytest.mark.parametrize("attrs", ATTRS)
@pytest.mark.parametrize("rows", FIGURE_ROWS)
def test_fig3_armstrong_size(benchmark, attrs, rows):
    relation = cached_relation(attrs, rows, CORRELATION)
    result = DepMiner(build_armstrong="none").run(relation)
    armstrong = benchmark(real_world_armstrong, relation, result.max_union)
    benchmark.extra_info["point"] = f"|R|={attrs} |r|={rows}"
    benchmark.extra_info["armstrong_size"] = len(armstrong)
    # Paper: sizes between 1/100 and 1/10,000 of |r| at full scale; at
    # this reduced scale we still require a large reduction factor.
    assert len(armstrong) <= rows / 4
