"""Whole-pipeline speedup guard for the columnar backend.

Times the complete Dep-Miner pipeline (strip → agree sets → cmax →
transversals → FD output, Armstrong skipped) on a wide correlated
relation, once per backend:

- **python** — ``DepMiner(backend="python")`` with its defaults: the
  couples algorithm (Algorithm 2) and the pure-Python transversal
  kernel;
- **columnar** — ``DepMiner(backend="columnar")``: integer-coded NumPy
  columns, lexsort grouping, batch agree-set intersection, lane-packed
  cmax and the vectorized transversal kernel (:mod:`repro.columnar`).

The workload is row-heavy on purpose: the couple population grows
quadratically with rows while the cover (and so the shared
``fd_output`` cost) stays roughly fixed, which is exactly the regime
the columnar rewrite targets.  The tests assert the acceptance floor of
the tentpole work — whole-pipeline ≥ 5× over the pure-Python path —
and that both backends produce bit-for-bit identical covers, also
across ``jobs`` ∈ {1, 2} on a smaller conformance workload.  Timings
are min-of-repeats over the same pre-generated relation.

The workload is environment-parameterised::

    REPRO_BENCH_COLUMNAR_ATTRS=30 REPRO_BENCH_COLUMNAR_ROWS=16000 \
        PYTHONPATH=src python benchmarks/bench_columnar.py \
        [BENCH_columnar.json]

Run as a script to (re)generate the committed ``BENCH_columnar.json``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List

from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation

ATTRS = int(os.environ.get("REPRO_BENCH_COLUMNAR_ATTRS", "30"))
ROWS = int(os.environ.get("REPRO_BENCH_COLUMNAR_ROWS", "16000"))
CORRELATION = float(
    os.environ.get("REPRO_BENCH_COLUMNAR_CORRELATION", "0.2")
)
REPEATS = int(os.environ.get("REPRO_BENCH_COLUMNAR_REPEATS", "2"))

MIN_COLUMNAR_SPEEDUP = 5.0

#: The cover-conformance sweep (runs the full pipeline once per
#: backend × jobs cell — kept small).
COVER_ATTRS = int(os.environ.get("REPRO_BENCH_COLUMNAR_COVER_ATTRS", "12"))
COVER_ROWS = int(os.environ.get("REPRO_BENCH_COLUMNAR_COVER_ROWS", "400"))

BACKENDS = ("python", "columnar")

_MEASURED: Dict[int, Dict[str, object]] = {}


def _canonical_cover(result) -> List[tuple]:
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in result.fds)


def measure(repeats: int = REPEATS) -> Dict[str, object]:
    """Min-of-*repeats* whole-pipeline seconds per backend (memoized)."""
    cached = _MEASURED.get(repeats)
    if cached is not None:
        return cached
    relation = generate_relation(ATTRS, ROWS, correlation=CORRELATION,
                                 seed=0)
    best = {name: float("inf") for name in BACKENDS}
    covers: Dict[str, List[tuple]] = {}
    phases: Dict[str, Dict[str, float]] = {}
    stats: Dict[str, Dict[str, int]] = {}
    for _ in range(repeats):
        for backend in BACKENDS:
            miner = DepMiner(backend=backend, build_armstrong="none")
            start = time.perf_counter()
            result = miner.run(relation)
            seconds = time.perf_counter() - start
            if seconds < best[backend]:
                best[backend] = seconds
                phases[backend] = dict(result.phase_seconds)
            covers[backend] = _canonical_cover(result)
            stats[backend] = dict(result.stats)
    outcome = {
        "seconds": best,
        "covers": covers,
        "phases": phases,
        "num_fds": len(covers["python"]),
        "num_couples": stats["python"].get("num_couples", 0),
    }
    _MEASURED[repeats] = outcome
    return outcome


def conformance_covers() -> Dict[str, List[tuple]]:
    """FD covers per (backend, jobs) cell on the smaller workload."""
    relation = generate_relation(COVER_ATTRS, COVER_ROWS,
                                 correlation=CORRELATION, seed=1)
    covers = {}
    for backend in BACKENDS:
        for jobs in (1, 2):
            result = DepMiner(backend=backend, jobs=jobs,
                              build_armstrong="none").run(relation)
            covers[f"{backend}-jobs{jobs}"] = _canonical_cover(result)
    return covers


def report(measured: Dict[str, object]) -> Dict[str, object]:
    seconds: Dict[str, float] = measured["seconds"]
    covers = conformance_covers()
    reference = covers["python-jobs1"]
    return {
        "workload": {
            "attrs": ATTRS,
            "rows": ROWS,
            "correlation": CORRELATION,
            "repeats": REPEATS,
            "num_fds": measured["num_fds"],
            "num_couples": measured["num_couples"],
        },
        "seconds": {name: round(value, 6)
                    for name, value in seconds.items()},
        "phase_seconds": {
            backend: {phase: round(value, 6)
                      for phase, value in phases.items()}
            for backend, phases in measured["phases"].items()
        },
        "speedup": {
            "columnar_vs_python": round(
                seconds["python"] / seconds["columnar"], 2
            ),
        },
        "floors": {
            "columnar_vs_python": MIN_COLUMNAR_SPEEDUP,
        },
        "covers_identical": (
            measured["covers"]["python"] == measured["covers"]["columnar"]
        ),
        "covers_identical_across_backends_and_jobs": all(
            cover == reference for cover in covers.values()
        ),
        "cover_workload": {
            "attrs": COVER_ATTRS,
            "rows": COVER_ROWS,
            "num_fds": len(reference),
            "cells": sorted(covers),
        },
    }


def test_backends_compute_the_same_cover():
    measured = measure(repeats=1)
    assert measured["covers"]["python"], "non-trivial workload expected"
    assert measured["covers"]["python"] == measured["covers"]["columnar"]


def test_covers_identical_across_backends_and_jobs():
    covers = conformance_covers()
    reference = covers["python-jobs1"]
    assert reference  # a non-trivial workload
    for cell, cover in covers.items():
        assert cover == reference, f"{cell} diverged from python-jobs1"


def test_columnar_speedup_floor():
    seconds = measure()["seconds"]
    speedup = seconds["python"] / seconds["columnar"]
    assert speedup >= MIN_COLUMNAR_SPEEDUP, (
        f"columnar backend only {speedup:.1f}x faster than the "
        f"pure-Python pipeline (python {seconds['python']:.3f}s, "
        f"columnar {seconds['columnar']:.3f}s; floor "
        f"{MIN_COLUMNAR_SPEEDUP}x)"
    )


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "BENCH_columnar.json"
    document = report(measure())
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
