"""Speedup guard for the artifact cache and the incremental miner.

Measures three ways of obtaining the FD cover of a grown relation:

- **cold** — ``DepMiner(cache=...)`` over the base relation with an
  empty :class:`~repro.cache.store.ArtifactStore`: the full pipeline
  runs and every stage artefact is recorded;
- **warm** — the same miner and store again: the run is a full hit,
  reduced to fingerprinting the relation and unpacking the cached
  cover;
- **incremental** — :class:`~repro.cache.incremental.IncrementalMiner`
  appending a ≤1% batch to the base relation, compared against a cold
  re-mine of the concatenated relation.

The tests assert the acceptance floors of the caching work: warm ≥ 10×
cold, incremental append ≥ 3× the cold re-mine, and bit-identical FD
covers across all paths.  Timings are min-of-repeats; the default
workload is high-correlation (many agreeing couples), which is exactly
the regime where re-mining is expensive and caching pays.

The workload is environment-parameterised::

    REPRO_BENCH_CACHE_ROWS=5000 REPRO_BENCH_CACHE_ATTRS=10 \
        PYTHONPATH=src python benchmarks/bench_cache.py [BENCH_cache.json]

Run as a script to (re)generate the committed ``BENCH_cache.json``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List

from repro.cache import ArtifactStore, IncrementalMiner
from repro.core.depminer import DepMiner
from repro.core.relation import Relation
from repro.datagen.synthetic import generate_relation

ATTRS = int(os.environ.get("REPRO_BENCH_CACHE_ATTRS", "8"))
ROWS = int(os.environ.get("REPRO_BENCH_CACHE_ROWS", "2000"))
CORRELATION = float(os.environ.get("REPRO_BENCH_CACHE_CORRELATION", "0.9"))
#: Appended batch: 1% of the base relation (the acceptance workload).
APPEND_ROWS = max(1, ROWS // 100)
REPEATS = int(os.environ.get("REPRO_BENCH_CACHE_REPEATS", "3"))

MIN_WARM_SPEEDUP = 10.0
MIN_INCREMENTAL_SPEEDUP = 3.0


def _cover(result) -> List[tuple]:
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in result.fds)


def _workload():
    base = generate_relation(ATTRS, ROWS, correlation=CORRELATION, seed=0)
    extra = list(
        generate_relation(ATTRS, APPEND_ROWS, correlation=CORRELATION,
                          seed=1).rows()
    )
    grown = Relation.from_rows(base.schema, list(base.rows()) + extra)
    return base, extra, grown


def measure(repeats: int = REPEATS) -> Dict[str, object]:
    """Min-of-*repeats* seconds per path, plus the covers they produce.

    Cold runs use a fresh store every repeat (nothing reusable); warm
    runs reuse one pre-populated store.  The incremental timer covers
    only ``append`` — the constructor's base mine is the cold run it
    amortises.
    """
    base, extra, grown = _workload()
    best = {"cold": float("inf"), "warm": float("inf"),
            "cold_grown": float("inf"), "incremental": float("inf")}
    covers = {}

    warm_store = ArtifactStore()
    warm_miner = DepMiner(build_armstrong="none", cache=warm_store)
    warm_miner.run(base)

    for _ in range(repeats):
        miner = DepMiner(build_armstrong="none", cache=ArtifactStore())
        start = time.perf_counter()
        covers["cold"] = _cover(miner.run(base))
        best["cold"] = min(best["cold"], time.perf_counter() - start)

        start = time.perf_counter()
        covers["warm"] = _cover(warm_miner.run(base))
        best["warm"] = min(best["warm"], time.perf_counter() - start)

        start = time.perf_counter()
        covers["cold_grown"] = _cover(
            DepMiner(build_armstrong="none").run(grown)
        )
        best["cold_grown"] = min(
            best["cold_grown"], time.perf_counter() - start
        )

        incremental = IncrementalMiner(base, build_armstrong="none")
        start = time.perf_counter()
        covers["incremental"] = _cover(incremental.append(extra))
        best["incremental"] = min(
            best["incremental"], time.perf_counter() - start
        )

    return {
        "seconds": best,
        "covers": covers,
        "warm_store_stats": dict(warm_store.stats),
    }


def report(measured: Dict[str, object]) -> Dict[str, object]:
    seconds = measured["seconds"]
    return {
        "workload": {
            "attrs": ATTRS,
            "rows": ROWS,
            "correlation": CORRELATION,
            "append_rows": APPEND_ROWS,
            "repeats": REPEATS,
        },
        "seconds": {name: round(value, 6)
                    for name, value in seconds.items()},
        "speedup": {
            "warm_vs_cold": round(seconds["cold"] / seconds["warm"], 2),
            "incremental_vs_cold_grown": round(
                seconds["cold_grown"] / seconds["incremental"], 2
            ),
        },
        "floors": {
            "warm_vs_cold": MIN_WARM_SPEEDUP,
            "incremental_vs_cold_grown": MIN_INCREMENTAL_SPEEDUP,
        },
    }


def test_all_paths_compute_the_same_cover():
    covers = measure(repeats=1)["covers"]
    assert covers["cold"] == covers["warm"]
    assert covers["cold_grown"] == covers["incremental"]


def test_warm_run_is_a_full_hit():
    base, _, _ = _workload()
    store = ArtifactStore()
    miner = DepMiner(build_armstrong="none", cache=store)
    miner.run(base)
    miner.run(base)
    assert store.stats["cache.hit"] == 1
    assert store.stats["cache.put"] == 3


def test_warm_speedup_floor():
    seconds = measure()["seconds"]
    speedup = seconds["cold"] / seconds["warm"]
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm full-hit rerun only {speedup:.1f}x faster than cold "
        f"(cold {seconds['cold']:.4f}s, warm {seconds['warm']:.4f}s; "
        f"floor {MIN_WARM_SPEEDUP}x)"
    )


def test_incremental_speedup_floor():
    seconds = measure()["seconds"]
    speedup = seconds["cold_grown"] / seconds["incremental"]
    assert speedup >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental append only {speedup:.1f}x faster than a cold "
        f"re-mine (cold {seconds['cold_grown']:.4f}s, append "
        f"{seconds['incremental']:.4f}s; floor {MIN_INCREMENTAL_SPEEDUP}x)"
    )


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "BENCH_cache.json"
    document = report(measure())
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
