"""Ablation: transversal search strategies on real cmax hypergraphs.

The paper's levelwise algorithm (Algorithm 5) prunes supersets of found
transversals via Apriori-gen; Berge's sequential method and the
FastFDs-style DFS are the classical alternatives; the layered kernel
(:mod:`repro.hypergraph.kernel`) adds a reduction pass and incremental
edge-coverage masks on top of the levelwise shape.  The extra arms
isolate the kernel's layers:

- ``kernel`` — the full pipeline (reductions + incremental coverage);
- ``kernel_no_reductions`` — incremental coverage only (``reductions=
  False``), i.e. the value of the coverage masks alone;
- ``kernel_vectorized`` — the NumPy lane-packed batch backend.

Benchmarked on the actual cmax hypergraphs produced by mining a
correlated synthetic relation (not on synthetic hypergraphs), so the
edge-size distribution is the one Dep-Miner really sees.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_relation
from repro.core.depminer import DepMiner
from repro.hypergraph.kernel import minimal_transversals_kernel
from repro.hypergraph.transversals import (
    minimal_transversals_berge,
    minimal_transversals_levelwise,
)

CORRELATION = 0.50
ATTRS = 10
ROWS = 500


@pytest.fixture(scope="module")
def cmax_families():
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    result = DepMiner(build_armstrong="none").run(relation)
    return list(result.cmax_sets.values())


def run_all(families, algorithm):
    for edges in families:
        algorithm(edges, ATTRS)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_levelwise(benchmark, cmax_families):
    benchmark(run_all, cmax_families, minimal_transversals_levelwise)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_berge(benchmark, cmax_families):
    benchmark(run_all, cmax_families, minimal_transversals_berge)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_dfs(benchmark, cmax_families):
    from repro.hypergraph.dfs import minimal_transversals_dfs

    benchmark(run_all, cmax_families, minimal_transversals_dfs)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_kernel(benchmark, cmax_families):
    benchmark(run_all, cmax_families, minimal_transversals_kernel)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_kernel_no_reductions(benchmark, cmax_families):
    def search(edges, width):
        return minimal_transversals_kernel(edges, width, reductions=False)

    benchmark(run_all, cmax_families, search)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_kernel_vectorized(benchmark, cmax_families):
    def search(edges, width):
        return minimal_transversals_kernel(edges, width,
                                           backend="vectorized")

    benchmark(run_all, cmax_families, search)
