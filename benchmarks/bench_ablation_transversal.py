"""Ablation: levelwise minimal transversals (Algorithm 5) vs Berge.

The paper's levelwise algorithm prunes supersets of found transversals
via Apriori-gen; Berge's sequential method is the classical alternative.
Benchmarked on the actual cmax hypergraphs produced by mining a
correlated synthetic relation (not on synthetic hypergraphs), so the
edge-size distribution is the one Dep-Miner really sees.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_relation
from repro.core.depminer import DepMiner
from repro.hypergraph.transversals import (
    minimal_transversals_berge,
    minimal_transversals_levelwise,
)

CORRELATION = 0.50
ATTRS = 10
ROWS = 500


@pytest.fixture(scope="module")
def cmax_families():
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    result = DepMiner(build_armstrong="none").run(relation)
    return list(result.cmax_sets.values())


def run_all(families, algorithm):
    for edges in families:
        algorithm(edges, ATTRS)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_levelwise(benchmark, cmax_families):
    benchmark(run_all, cmax_families, minimal_transversals_levelwise)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_berge(benchmark, cmax_families):
    benchmark(run_all, cmax_families, minimal_transversals_berge)


@pytest.mark.benchmark(group="ablation-transversal")
def test_transversal_dfs(benchmark, cmax_families):
    from repro.hypergraph.dfs import minimal_transversals_dfs

    benchmark(run_all, cmax_families, minimal_transversals_dfs)
