"""Ablation: value-distribution skew (beyond the paper's uniform c).

The paper's generator draws uniformly from the c-controlled domain;
Zipf-skewed draws produce a few huge equivalence classes, the regime
where couple enumeration (quadratic in class size) hurts Dep-Miner most
and where Algorithm 3's identifier intersection is supposed to help.
"""

from __future__ import annotations

import pytest

from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation

ATTRS = 8
ROWS = 1000

RELATIONS = {
    skew: generate_relation(
        ATTRS, ROWS, correlation=0.5, seed=0, skew=skew
    )
    for skew in (0.0, 0.8, 1.2)
}


@pytest.mark.benchmark(group="ablation-skew")
@pytest.mark.parametrize("skew", sorted(RELATIONS))
@pytest.mark.parametrize("algorithm", ("couples", "identifiers"))
def test_skewed_mining(benchmark, skew, algorithm):
    miner = DepMiner(agree_algorithm=algorithm, build_armstrong="none")
    benchmark.extra_info["skew"] = skew
    benchmark(miner.run, RELATIONS[skew])
