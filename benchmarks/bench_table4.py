"""Table 4: execution times and Armstrong sizes, correlated data (30%).

Same scaled-down grid as the Table 3 benchmarks, with the paper's
correlation parameter c = 30% (each column drawn from (1 - c)*|r|
distinct values).  Timings reproduce the left half of Table 4; the
recorded ``armstrong_size`` extra-info reproduces the right half.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TABLE_ATTRS, TABLE_ROWS, cached_relation
from repro.bench.harness import ALGORITHM_NAMES, run_algorithm

CORRELATION = 0.30


@pytest.mark.benchmark(group="table4-times")
@pytest.mark.parametrize("attrs", TABLE_ATTRS)
@pytest.mark.parametrize("rows", TABLE_ROWS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_table4_cell(benchmark, algorithm, attrs, rows):
    relation = cached_relation(attrs, rows, CORRELATION)
    _seconds, num_fds, size = run_algorithm(algorithm, relation)
    benchmark.extra_info["num_fds"] = num_fds
    benchmark.extra_info["armstrong_size"] = size
    benchmark.extra_info["cell"] = f"|R|={attrs} |r|={rows}"
    benchmark(run_algorithm, algorithm, relation)
    assert size is not None and size < rows
