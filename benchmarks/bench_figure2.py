"""Figure 2: execution times vs |r| at narrow and wide |R|, no constraints.

One timed benchmark per (|R|, |r|, algorithm) point of the two curves the
figure plots (the paper uses |R| = 10 and |R| = 50; the scaled-down
sweep uses the conftest's narrow/wide widths).  Comparing groups
"fig2-narrow" and "fig2-wide" reproduces the figure's message: the gap
between Dep-Miner and TANE widens with |R|.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    FIGURE_NARROW,
    FIGURE_ROWS,
    FIGURE_WIDE,
    cached_relation,
)
from repro.bench.harness import ALGORITHM_NAMES, run_algorithm

CORRELATION = None


@pytest.mark.benchmark(group="fig2-narrow")
@pytest.mark.parametrize("rows", FIGURE_ROWS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_fig2_narrow(benchmark, algorithm, rows):
    relation = cached_relation(FIGURE_NARROW, rows, CORRELATION)
    benchmark.extra_info["point"] = f"|R|={FIGURE_NARROW} |r|={rows}"
    benchmark(run_algorithm, algorithm, relation)


@pytest.mark.benchmark(group="fig2-wide")
@pytest.mark.parametrize("rows", FIGURE_ROWS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_fig2_wide(benchmark, algorithm, rows):
    relation = cached_relation(FIGURE_WIDE, rows, CORRELATION)
    benchmark.extra_info["point"] = f"|R|={FIGURE_WIDE} |r|={rows}"
    benchmark(run_algorithm, algorithm, relation)
