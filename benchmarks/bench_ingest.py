"""End-to-end CSV→cover speedup guard for the streaming ingest path.

Times the complete discovery workflow *from the file on disk* — parse,
factorize, mine (Armstrong skipped) — once per ingestion path:

- **legacy** — ``relation_from_csv`` materializes a row-wise
  :class:`~repro.core.relation.Relation`, then
  ``DepMiner(backend="columnar")`` re-encodes it column by column;
- **streaming** — :func:`repro.columnar.ingest.ingest_csv` factorizes
  the CSV bytes directly into the dense code matrix in one chunked
  pass and hands the :class:`CodedRelation` to the same miner, which
  strips the encode stage and never builds the ``Relation``.

The workload is key-heavy on purpose: every column is a shuffled
permutation of ``range(rows)``, so parsing and factorization dominate
while the mining stage (zero couples) stays tiny — exactly the regime
the streaming reader targets.  The tests assert the acceptance floor
of the tentpole work — CSV→cover ≥ 3× over the materializing path —
and that covers *and* Armstrong relations stay bit-identical across
ingest paths × backends × jobs on a smaller mixed-type conformance
CSV, including a warm-cache replay served without ever materializing
the ``Relation``.  Timings are min-of-repeats over the same on-disk
file.

The workload is environment-parameterised::

    REPRO_BENCH_INGEST_ATTRS=30 REPRO_BENCH_INGEST_ROWS=16000 \
        PYTHONPATH=src python benchmarks/bench_ingest.py \
        [BENCH_ingest.json]

Run as a script to (re)generate the committed ``BENCH_ingest.json``.
"""

from __future__ import annotations

import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.columnar.ingest import ingest_csv
from repro.core.depminer import DepMiner
from repro.storage.csv_io import relation_from_csv

ATTRS = int(os.environ.get("REPRO_BENCH_INGEST_ATTRS", "30"))
ROWS = int(os.environ.get("REPRO_BENCH_INGEST_ROWS", "16000"))
REPEATS = int(os.environ.get("REPRO_BENCH_INGEST_REPEATS", "3"))

MIN_INGEST_SPEEDUP = 3.0

#: The conformance sweep (full pipeline incl. Armstrong once per
#: ingest-path × backend × jobs cell — kept small and mixed-type).
COVER_ATTRS = int(os.environ.get("REPRO_BENCH_INGEST_COVER_ATTRS", "8"))
COVER_ROWS = int(os.environ.get("REPRO_BENCH_INGEST_COVER_ROWS", "240"))

PATHS = ("legacy", "streaming")

_MEASURED: Dict[int, Dict[str, object]] = {}
_WORKDIR: Optional[Path] = None


def _workdir() -> Path:
    global _WORKDIR
    if _WORKDIR is None:
        _WORKDIR = Path(tempfile.mkdtemp(prefix="bench_ingest_"))
    return _WORKDIR


def workload_csv() -> Path:
    """The key-heavy benchmark CSV, written once per process.

    Every column is an independently shuffled permutation of
    ``range(ROWS)`` — all columns are keys, the couple population is
    empty, and end-to-end time is dominated by parsing/encoding.
    """
    path = _workdir() / f"workload_a{ATTRS}_r{ROWS}.csv"
    if path.exists():
        return path
    columns = []
    for attribute in range(ATTRS):
        values = list(range(ROWS))
        random.Random(f"0/{attribute}").shuffle(values)
        columns.append(values)
    with open(path, "w", newline="") as handle:
        handle.write(",".join(f"c{a:02d}" for a in range(ATTRS)) + "\n")
        for row in zip(*columns):
            handle.write(",".join(map(str, row)) + "\n")
    return path


def conformance_csv() -> Path:
    """A small mixed-type CSV (ints, floats, strings, null tokens)."""
    path = _workdir() / f"conformance_a{COVER_ATTRS}_r{COVER_ROWS}.csv"
    if path.exists():
        return path
    rng = random.Random(7)
    pools = []
    for attribute in range(COVER_ATTRS):
        kind = attribute % 4
        if kind == 0:
            pool = [str(v) for v in range(6)]
        elif kind == 1:
            pool = [f"{v}.5" for v in range(5)] + ["NULL"]
        elif kind == 2:
            pool = ["x", "y", "z", "w", ""]
        else:
            pool = [str(v) for v in range(12)]
        pools.append(pool)
    with open(path, "w", newline="") as handle:
        handle.write(",".join(f"c{a}" for a in range(COVER_ATTRS)) + "\n")
        for _ in range(COVER_ROWS):
            handle.write(
                ",".join(rng.choice(pool) for pool in pools) + "\n"
            )
    return path


def _canonical_cover(result) -> List[tuple]:
    return sorted((fd.lhs.mask, fd.rhs_index) for fd in result.fds)


def _mine(source, **options):
    return DepMiner(backend="columnar", build_armstrong="none",
                    **options).run(source)


def measure(repeats: int = REPEATS) -> Dict[str, object]:
    """Min-of-*repeats* CSV→cover seconds per ingest path (memoized)."""
    cached = _MEASURED.get(repeats)
    if cached is not None:
        return cached
    path = workload_csv()
    best = {name: float("inf") for name in PATHS}
    covers: Dict[str, List[tuple]] = {}
    for _ in range(repeats):
        start = time.perf_counter()
        relation = relation_from_csv(path)
        result = _mine(relation)
        seconds = time.perf_counter() - start
        best["legacy"] = min(best["legacy"], seconds)
        covers["legacy"] = _canonical_cover(result)

        start = time.perf_counter()
        coded = ingest_csv(path)
        result = _mine(coded)
        seconds = time.perf_counter() - start
        best["streaming"] = min(best["streaming"], seconds)
        covers["streaming"] = _canonical_cover(result)
        assert not coded.materialized, \
            "streaming mine must not build the Relation"
    outcome = {
        "seconds": best,
        "covers": covers,
        "num_fds": len(covers["legacy"]),
    }
    _MEASURED[repeats] = outcome
    return outcome


def _armstrong_rows(result):
    classical = list(result.classical_armstrong.rows())
    real = (None if result.armstrong is None
            else list(result.armstrong.rows()))
    return classical, real


def conformance_outputs() -> Dict[str, object]:
    """Cover + Armstrong outputs per (ingest path, backend, jobs) cell.

    The streaming cells mine the :class:`CodedRelation` directly; the
    python-backend streaming cell exercises the lazy ``to_relation``
    fallback.  All cells must match the legacy python-jobs1 reference
    bit for bit.
    """
    path = conformance_csv()
    cells: Dict[str, tuple] = {}
    for backend in ("python", "columnar"):
        for jobs in (1, 2):
            for ingest in PATHS:
                source = (relation_from_csv(path) if ingest == "legacy"
                          else ingest_csv(path))
                result = DepMiner(backend=backend, jobs=jobs).run(source)
                cells[f"{ingest}-{backend}-jobs{jobs}"] = (
                    _canonical_cover(result), *_armstrong_rows(result)
                )
    return cells


def warm_cache_replay() -> Dict[str, object]:
    """Warm full-cover hit must be served before materialization."""
    from repro.cache import ArtifactStore
    from repro.obs import MetricsRegistry

    path = conformance_csv()
    store = ArtifactStore(_workdir() / "cache")
    cold = DepMiner(backend="columnar", cache=store).run(
        ingest_csv(path, fingerprint=True)
    )
    warm_input = ingest_csv(path, fingerprint=True)
    metrics = MetricsRegistry()
    warm = DepMiner(backend="columnar", cache=store,
                    metrics=metrics).run(warm_input)
    return {
        "full_hit": metrics.counters.get("cache.full_hit", 0),
        "materialized": warm_input.materialized,
        "covers_identical": (
            _canonical_cover(cold) == _canonical_cover(warm)
        ),
        "armstrong_identical": (
            _armstrong_rows(cold) == _armstrong_rows(warm)
        ),
    }


def report(measured: Dict[str, object]) -> Dict[str, object]:
    seconds: Dict[str, float] = measured["seconds"]
    cells = conformance_outputs()
    reference = cells["legacy-python-jobs1"]
    warm = warm_cache_replay()
    return {
        "workload": {
            "attrs": ATTRS,
            "rows": ROWS,
            "repeats": REPEATS,
            "num_fds": measured["num_fds"],
        },
        "seconds": {name: round(value, 6)
                    for name, value in seconds.items()},
        "speedup": {
            "streaming_vs_legacy": round(
                seconds["legacy"] / seconds["streaming"], 2
            ),
        },
        "floors": {
            "streaming_vs_legacy": MIN_INGEST_SPEEDUP,
        },
        "covers_identical": (
            measured["covers"]["legacy"] == measured["covers"]["streaming"]
        ),
        "outputs_identical_across_paths_backends_and_jobs": all(
            cell == reference for cell in cells.values()
        ),
        "warm_cache": warm,
        "cover_workload": {
            "attrs": COVER_ATTRS,
            "rows": COVER_ROWS,
            "num_fds": len(reference[0]),
            "cells": sorted(cells),
        },
    }


def test_ingest_paths_compute_the_same_cover():
    measured = measure(repeats=1)
    assert measured["covers"]["legacy"], "non-trivial workload expected"
    assert measured["covers"]["legacy"] == measured["covers"]["streaming"]


def test_outputs_identical_across_paths_backends_and_jobs():
    cells = conformance_outputs()
    reference = cells["legacy-python-jobs1"]
    assert reference[0]  # a non-trivial cover
    assert reference[1]  # classical Armstrong present
    for cell, outputs in cells.items():
        assert outputs == reference, \
            f"{cell} diverged from legacy-python-jobs1"


def test_warm_cache_replay_skips_materialization():
    warm = warm_cache_replay()
    assert warm["full_hit"] == 1
    assert not warm["materialized"]
    assert warm["covers_identical"]
    assert warm["armstrong_identical"]


def test_streaming_speedup_floor():
    seconds = measure()["seconds"]
    speedup = seconds["legacy"] / seconds["streaming"]
    assert speedup >= MIN_INGEST_SPEEDUP, (
        f"streaming ingest only {speedup:.1f}x faster than the "
        f"materializing CSV path (legacy {seconds['legacy']:.3f}s, "
        f"streaming {seconds['streaming']:.3f}s; floor "
        f"{MIN_INGEST_SPEEDUP}x)"
    )


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "BENCH_ingest.json"
    document = report(measure())
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
