"""Extension benchmark: direct Dep-Miner vs guided-sampling discovery.

Sampling mines a small random sample and repairs it with counterexample
pairs until the cover is exact (see ``repro.core.sampling``).  It pays
off on duplication-heavy data, where direct mining's couple enumeration
is quadratic in class sizes while verification stays a linear scan.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import cached_relation
from repro.core.depminer import discover_fds
from repro.core.sampling import discover_with_sampling

ATTRS = 6
ROWS = 2000
CORRELATION = 0.9  # duplication-heavy: large equivalence classes


@pytest.mark.benchmark(group="sampling")
def test_direct_discovery(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    benchmark(discover_fds, relation)


@pytest.mark.benchmark(group="sampling")
def test_sampling_discovery(benchmark):
    relation = cached_relation(ATTRS, ROWS, CORRELATION)
    result = benchmark(
        discover_with_sampling, relation, 128
    )
    assert result.fds == discover_fds(relation)
