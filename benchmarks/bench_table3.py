"""Table 3: execution times and Armstrong sizes, data without constraints.

One benchmark per (|R|, |r|, algorithm) cell of a scaled-down version of
the paper's grid, at the paper's "without constraints" correlation
setting (c = None).  The Armstrong size of each cell is recorded in the
benchmark's ``extra_info`` so a full run reproduces both halves of the
table: 3(a) from the timings, 3(b) from the recorded sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TABLE_ATTRS, TABLE_ROWS, cached_relation
from repro.bench.harness import ALGORITHM_NAMES, run_algorithm

CORRELATION = None  # "without constraints"


@pytest.mark.benchmark(group="table3-times")
@pytest.mark.parametrize("attrs", TABLE_ATTRS)
@pytest.mark.parametrize("rows", TABLE_ROWS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_table3_cell(benchmark, algorithm, attrs, rows):
    relation = cached_relation(attrs, rows, CORRELATION)
    _seconds, num_fds, size = run_algorithm(algorithm, relation)
    benchmark.extra_info["num_fds"] = num_fds
    benchmark.extra_info["armstrong_size"] = size
    benchmark.extra_info["cell"] = f"|R|={attrs} |r|={rows}"
    benchmark(run_algorithm, algorithm, relation)
    # Table 3(b) shape: the Armstrong relation is far smaller than r.
    assert size is not None and size < rows
