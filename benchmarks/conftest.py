"""Shared fixtures for the pytest-benchmark suite.

Every benchmark regenerates one of the paper's artefacts (Tables 3-5,
Figures 2-7) at a CI-friendly scale, plus ablations of the design
choices DESIGN.md calls out.  The grids here are intentionally small —
the full-scale sweeps live behind ``python -m repro bench --scale paper``.

Relations are generated once per (attrs, rows, correlation, seed) cell
and cached for the whole session so the benchmark timers measure the
algorithms, not the generator.
"""

from __future__ import annotations

import pytest

from repro.core.relation import Relation
from repro.datagen.synthetic import generate_relation

# The scaled-down |R| x |r| grid used by the table benchmarks.
TABLE_ATTRS = (5, 10)
TABLE_ROWS = (200, 500)
# The |r| sweep used by the figure benchmarks, at narrow/wide |R|.
FIGURE_ROWS = (200, 500, 1000)
FIGURE_NARROW = 5
FIGURE_WIDE = 12

_cache = {}


def cached_relation(attrs: int, rows: int, correlation, seed: int = 0) -> Relation:
    key = (attrs, rows, correlation, seed)
    if key not in _cache:
        _cache[key] = generate_relation(
            attrs, rows, correlation=correlation, seed=seed
        )
    return _cache[key]


@pytest.fixture
def relation_factory():
    return cached_relation
