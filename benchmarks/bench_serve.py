"""Speedup guard for the discovery daemon (``repro serve``).

Measures three ways of answering "what is the FD cover of this
relation?":

- **cold_process** — the stateless baseline the daemon replaces: one
  ``python -m repro.cli discover`` subprocess per question, paying
  interpreter start-up, CSV parse and a full mine every time;
- **cold_mine** — a fresh in-process ``DepMiner.run`` per question
  (what an application embedding the library pays without sessions);
- **warm_session** — a ``GET /sessions/<id>/cover`` round trip against
  a live daemon holding the relation in a warm session: full HTTP
  stack included, but the mine happened once at registration.

The tests assert the acceptance floors of the service work: a warm
session answers ≥ 20× faster than a cold process and ≥ 2× faster than
even an in-process cold mine, and the served cover is bit-identical to
``DepMiner.run``.  Timings are min-of-repeats.

The workload is environment-parameterised::

    REPRO_BENCH_SERVE_ROWS=2000 REPRO_BENCH_SERVE_ATTRS=8 \
        PYTHONPATH=src python benchmarks/bench_serve.py [BENCH_serve.json]

Run as a script to (re)generate the committed ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation
from repro.service import ReproServiceServer, ServiceClient, ServiceConfig
from repro.storage.csv_io import relation_to_csv

ATTRS = int(os.environ.get("REPRO_BENCH_SERVE_ATTRS", "8"))
ROWS = int(os.environ.get("REPRO_BENCH_SERVE_ROWS", "2000"))
CORRELATION = float(os.environ.get("REPRO_BENCH_SERVE_CORRELATION", "0.9"))
REPEATS = int(os.environ.get("REPRO_BENCH_SERVE_REPEATS", "3"))

MIN_PROCESS_SPEEDUP = 20.0
MIN_MINE_SPEEDUP = 2.0


def _workload():
    return generate_relation(ATTRS, ROWS, correlation=CORRELATION, seed=0)


def _cover_names(result) -> List[tuple]:
    return sorted((tuple(fd.lhs.names), fd.rhs) for fd in result.fds)


def _served_cover(document) -> List[tuple]:
    return sorted((tuple(fd["lhs"]), fd["rhs"])
                  for fd in document["fds"])


class _LiveServer:
    """An in-process daemon on an ephemeral port, for the warm path."""

    def __init__(self):
        self.server = ReproServiceServer(ServiceConfig(port=0))
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
        )
        self.thread.start()
        self.client = ServiceClient(
            f"http://127.0.0.1:{self.server.port}", timeout=120.0
        )

    def stop(self) -> None:
        self.server.shutdown()
        self.thread.join()
        self.server.server_close()


def measure(repeats: int = REPEATS) -> Dict[str, object]:
    """Min-of-*repeats* seconds per path, plus the covers they produce.

    The warm session is registered once (that mine is the cold run it
    amortises); the timed request is the cover query alone.  The cold
    process is timed end-to-end — start-up cost is precisely what a
    long-lived daemon exists to avoid paying per question.
    """
    relation = _workload()
    best = {"cold_process": float("inf"), "cold_mine": float("inf"),
            "warm_session": float("inf")}
    covers = {}

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        csv_path = Path(tmp) / "workload.csv"
        relation_to_csv(relation, csv_path)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )

        live = _LiveServer()
        try:
            registered = live.client.register(
                "bench", csv_path=str(csv_path)
            )
            session_id = registered["session"]["id"]
            for _ in range(repeats):
                start = time.perf_counter()
                subprocess.run(
                    [sys.executable, "-m", "repro.cli", "discover",
                     str(csv_path)],
                    env=env, check=True, stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                best["cold_process"] = min(
                    best["cold_process"], time.perf_counter() - start
                )

                start = time.perf_counter()
                result = DepMiner(build_armstrong="none").run(relation)
                best["cold_mine"] = min(
                    best["cold_mine"], time.perf_counter() - start
                )
                covers["cold_mine"] = _cover_names(result)

                start = time.perf_counter()
                served = live.client.cover(session_id)
                best["warm_session"] = min(
                    best["warm_session"], time.perf_counter() - start
                )
                covers["warm_session"] = _served_cover(served["cover"])
        finally:
            live.stop()

    return {"seconds": best, "covers": covers}


def report(measured: Dict[str, object]) -> Dict[str, object]:
    seconds = measured["seconds"]
    return {
        "workload": {
            "attrs": ATTRS,
            "rows": ROWS,
            "correlation": CORRELATION,
            "repeats": REPEATS,
        },
        "seconds": {name: round(value, 6)
                    for name, value in seconds.items()},
        "speedup": {
            "warm_session_vs_cold_process": round(
                seconds["cold_process"] / seconds["warm_session"], 2
            ),
            "warm_session_vs_cold_mine": round(
                seconds["cold_mine"] / seconds["warm_session"], 2
            ),
        },
        "floors": {
            "warm_session_vs_cold_process": MIN_PROCESS_SPEEDUP,
            "warm_session_vs_cold_mine": MIN_MINE_SPEEDUP,
        },
    }


def test_served_cover_is_exact():
    covers = measure(repeats=1)["covers"]
    assert covers["warm_session"] == covers["cold_mine"]


def test_warm_session_speedup_floors():
    seconds = measure()["seconds"]
    process_speedup = seconds["cold_process"] / seconds["warm_session"]
    mine_speedup = seconds["cold_mine"] / seconds["warm_session"]
    assert process_speedup >= MIN_PROCESS_SPEEDUP, (
        f"warm session only {process_speedup:.1f}x faster than a cold "
        f"process (cold {seconds['cold_process']:.4f}s, warm "
        f"{seconds['warm_session']:.4f}s; floor {MIN_PROCESS_SPEEDUP}x)"
    )
    assert mine_speedup >= MIN_MINE_SPEEDUP, (
        f"warm session only {mine_speedup:.1f}x faster than an "
        f"in-process cold mine (cold {seconds['cold_mine']:.4f}s, warm "
        f"{seconds['warm_session']:.4f}s; floor {MIN_MINE_SPEEDUP}x)"
    )


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "BENCH_serve.json"
    document = report(measure())
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
