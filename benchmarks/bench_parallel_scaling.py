"""Dispatch-latency guard for the persistent worker pool + shm arena.

Two questions, each answered by min-of-repeats timings:

- **Per-request latency on a warm repeated workload** — the same
  relation mined again and again (the service pattern) with ``jobs=2``:
  ``pool_mode="ephemeral"`` pays two pool spin-ups per request (one per
  sharded phase), ``pool_mode="persistent"`` + shm pays none after the
  first.  The floor: the persistent pool answers ≥ 3× faster per
  request.  The workload is deliberately small — dispatch latency is
  precisely the cost that dominates small interactive requests, and
  precisely what a reusable pool exists to remove.
- **Zero-copy vs pickled context dispatch** — one ``map()`` over a
  persistent pool whose shared context holds a large NumPy array:
  with the shared-memory arena the array is published once and mapped
  by the workers; without it the pickled context rides along with every
  task.  The floor: shm dispatch ≥ 1.5× faster at the default 16 MiB.

A jobs ∈ {1, 2, 4} scaling series is recorded informationally (this
container has a single core, so parallel *throughput* gains are not
asserted — output identity and dispatch latency are).

The workload is environment-parameterised::

    REPRO_BENCH_PARALLEL_ROWS=80 REPRO_BENCH_PARALLEL_ATTRS=6 \
        PYTHONPATH=src python benchmarks/bench_parallel_scaling.py \
        [BENCH_parallel.json]

Run as a script to (re)generate the committed ``BENCH_parallel.json``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List

from repro.core.depminer import DepMiner
from repro.datagen.synthetic import generate_relation
from repro.parallel import ShardedExecutor, register_shard_kind
from repro.parallel.shm import numpy_available

ATTRS = int(os.environ.get("REPRO_BENCH_PARALLEL_ATTRS", "6"))
ROWS = int(os.environ.get("REPRO_BENCH_PARALLEL_ROWS", "80"))
CORRELATION = float(
    os.environ.get("REPRO_BENCH_PARALLEL_CORRELATION", "0.9")
)
REPEATS = int(os.environ.get("REPRO_BENCH_PARALLEL_REPEATS", "5"))
#: Size of the shared array in the dispatch microbenchmark.
SHARED_MIB = int(os.environ.get("REPRO_BENCH_PARALLEL_SHARED_MIB", "16"))

JOBS_SERIES = (1, 2, 4)
MIN_PERSISTENT_SPEEDUP = 3.0
MIN_SHM_DISPATCH_SPEEDUP = 1.5


@register_shard_kind("bench.parallel_touch")
def _touch_shard(shared, payload, metrics):
    """Touch one element of the shared array — all context, no compute,
    so the timing isolates how the context travelled."""
    data = shared["data"]
    return int(data[payload % data.shape[0]])


def _workload():
    return generate_relation(ATTRS, ROWS, correlation=CORRELATION, seed=0)


def _cover_names(result) -> List[tuple]:
    return sorted((tuple(fd.lhs.names), fd.rhs) for fd in result.fds)


def _best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(repeats: int = REPEATS) -> Dict[str, object]:
    """Min-of-*repeats* seconds per dispatch mode, plus the covers.

    Every miner is warmed with one untimed run first: the persistent
    pool's build (and the workers' first context decode) is the cold
    cost it amortises, exactly like the service daemon's
    ``warm_pool()``.  The ephemeral miner's "warm" run still builds
    pools — that *is* its steady state.
    """
    relation = _workload()
    seconds: Dict[str, object] = {}
    covers: Dict[str, List[tuple]] = {}

    serial = DepMiner(build_armstrong="none")
    covers["serial"] = _cover_names(serial.run(relation))
    seconds["serial_request"] = _best(
        lambda: serial.run(relation), repeats
    )

    ephemeral = DepMiner(jobs=2, pool_mode="ephemeral",
                         build_armstrong="none")
    covers["ephemeral"] = _cover_names(ephemeral.run(relation))
    seconds["ephemeral_request"] = _best(
        lambda: ephemeral.run(relation), repeats
    )

    persistent = DepMiner(jobs=2, pool_mode="persistent", shm=True,
                          build_armstrong="none")
    covers["persistent"] = _cover_names(persistent.run(relation))
    seconds["persistent_request"] = _best(
        lambda: persistent.run(relation), repeats
    )
    persistent.close()

    scaling: Dict[str, float] = {}
    for jobs in JOBS_SERIES:
        miner = DepMiner(jobs=jobs, build_armstrong="none")
        miner.run(relation)
        scaling[str(jobs)] = _best(lambda: miner.run(relation), repeats)
        miner.close()
    seconds["jobs"] = scaling

    if numpy_available():
        import numpy

        data = numpy.arange(SHARED_MIB * 131072, dtype=numpy.int64)
        payloads = [0, 1]  # == jobs, so the pickle path stays inline
        for label, shm in (("shm_dispatch", True),
                           ("pickle_dispatch", False)):
            executor = ShardedExecutor(jobs=2, shm=shm)
            executor.map("bench.parallel_touch", payloads,
                         shared={"data": data})
            seconds[label] = _best(
                lambda: executor.map("bench.parallel_touch", payloads,
                                     shared={"data": data}),
                repeats,
            )
            executor.close()

    return {"seconds": seconds, "covers": covers}


def report(measured: Dict[str, object]) -> Dict[str, object]:
    seconds = measured["seconds"]
    covers = measured["covers"]
    speedup = {
        "persistent_vs_ephemeral": round(
            seconds["ephemeral_request"] / seconds["persistent_request"], 2
        ),
    }
    floors = {"persistent_vs_ephemeral": MIN_PERSISTENT_SPEEDUP}
    if "shm_dispatch" in seconds:
        speedup["shm_vs_pickle_dispatch"] = round(
            seconds["pickle_dispatch"] / seconds["shm_dispatch"], 2
        )
        floors["shm_vs_pickle_dispatch"] = MIN_SHM_DISPATCH_SPEEDUP
    return {
        "workload": {
            "attrs": ATTRS,
            "rows": ROWS,
            "correlation": CORRELATION,
            "shared_mib": SHARED_MIB,
            "repeats": REPEATS,
        },
        "seconds": {
            name: (round(value, 6) if isinstance(value, float)
                   else {k: round(v, 6) for k, v in value.items()})
            for name, value in seconds.items()
        },
        "speedup": speedup,
        "floors": floors,
        "covers_identical": (
            covers["serial"] == covers["ephemeral"] == covers["persistent"]
        ),
    }


def test_parallel_covers_identical():
    covers = measure(repeats=1)["covers"]
    assert covers["serial"] == covers["ephemeral"] == covers["persistent"]


def test_persistent_pool_dispatch_floor():
    seconds = measure()["seconds"]
    speedup = seconds["ephemeral_request"] / seconds["persistent_request"]
    assert speedup >= MIN_PERSISTENT_SPEEDUP, (
        f"warm persistent-pool request only {speedup:.1f}x faster than "
        f"the per-call pool (ephemeral "
        f"{seconds['ephemeral_request']:.4f}s, persistent "
        f"{seconds['persistent_request']:.4f}s; floor "
        f"{MIN_PERSISTENT_SPEEDUP}x)"
    )


def test_shm_dispatch_floor():
    import pytest

    seconds = measure()["seconds"]
    if "shm_dispatch" not in seconds:
        pytest.skip("NumPy unavailable: no shared-memory arena to time")
    speedup = seconds["pickle_dispatch"] / seconds["shm_dispatch"]
    assert speedup >= MIN_SHM_DISPATCH_SPEEDUP, (
        f"shm dispatch only {speedup:.1f}x faster than pickled context "
        f"(pickle {seconds['pickle_dispatch']:.4f}s, shm "
        f"{seconds['shm_dispatch']:.4f}s; floor "
        f"{MIN_SHM_DISPATCH_SPEEDUP}x)"
    )


def main(argv: List[str]) -> int:
    path = argv[0] if argv else "BENCH_parallel.json"
    document = report(measure())
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
