"""Table 5: execution times and Armstrong sizes, correlated data (50%).

Same scaled-down grid as the Table 3 benchmarks, with the paper's
correlation parameter c = 50% — the heaviest setting, where equivalence
classes are largest and both miners and the Armstrong construction do
the most work.  Timings reproduce the left half of Table 5; the recorded
``armstrong_size`` extra-info reproduces the right half.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import TABLE_ATTRS, TABLE_ROWS, cached_relation
from repro.bench.harness import ALGORITHM_NAMES, run_algorithm

CORRELATION = 0.50


@pytest.mark.benchmark(group="table5-times")
@pytest.mark.parametrize("attrs", TABLE_ATTRS)
@pytest.mark.parametrize("rows", TABLE_ROWS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_table5_cell(benchmark, algorithm, attrs, rows):
    relation = cached_relation(attrs, rows, CORRELATION)
    _seconds, num_fds, size = run_algorithm(algorithm, relation)
    benchmark.extra_info["num_fds"] = num_fds
    benchmark.extra_info["armstrong_size"] = size
    benchmark.extra_info["cell"] = f"|R|={attrs} |r|={rows}"
    benchmark(run_algorithm, algorithm, relation)
    assert size is not None and size < rows
